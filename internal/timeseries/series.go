// Package timeseries provides the raw time-series data model used throughout
// the regression cube (paper §2.2): a series is a function z(t) over a
// discrete integer interval [tb, te].
//
// Series in a data cube are related in two ways that mirror the paper's two
// aggregation theorems: pointwise summation (standard-dimension roll-up) and
// interval concatenation (time-dimension roll-up). This package provides
// both operations on raw data so that higher layers can validate that the
// compressed ISB algebra reproduces exactly what raw-data computation would.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// ErrInterval is returned for malformed or mismatched time intervals.
var ErrInterval = errors.New("timeseries: invalid interval")

// ErrEmpty is returned when an operation requires a non-empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// Interval is a closed range [Tb, Te] of discrete integer time ticks.
type Interval struct {
	Tb, Te int64
}

// NewInterval validates and returns the interval [tb, te].
func NewInterval(tb, te int64) (Interval, error) {
	if te < tb {
		return Interval{}, fmt.Errorf("%w: [%d,%d]", ErrInterval, tb, te)
	}
	return Interval{Tb: tb, Te: te}, nil
}

// Len returns the number of ticks in the interval (te - tb + 1).
func (iv Interval) Len() int64 { return iv.Te - iv.Tb + 1 }

// Mid returns the mean time t̄ = (tb+te)/2 (Lemma 3.1).
func (iv Interval) Mid() float64 { return float64(iv.Tb+iv.Te) / 2 }

// Contains reports whether t lies inside the interval.
func (iv Interval) Contains(t int64) bool { return t >= iv.Tb && t <= iv.Te }

// Equal reports whether two intervals are identical.
func (iv Interval) Equal(other Interval) bool { return iv.Tb == other.Tb && iv.Te == other.Te }

// Adjacent reports whether other starts exactly one tick after iv ends.
func (iv Interval) Adjacent(other Interval) bool { return other.Tb == iv.Te+1 }

// String renders the interval as "[tb,te]".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Tb, iv.Te) }

// Series is a discrete time series z(t) : t ∈ [tb, te]. Values[i] holds
// z(tb+i). The zero Series is empty and invalid for most operations.
type Series struct {
	Interval Interval
	Values   []float64
}

// New builds a series over [tb, tb+len(values)-1]. The value slice is used
// directly (not copied).
func New(tb int64, values []float64) (*Series, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	return &Series{
		Interval: Interval{Tb: tb, Te: tb + int64(len(values)) - 1},
		Values:   values,
	}, nil
}

// MustNew is New for literals in tests and examples; it panics on error.
func MustNew(tb int64, values []float64) *Series {
	s, err := New(tb, values)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// At returns z(t). It returns an error when t is outside the interval.
func (s *Series) At(t int64) (float64, error) {
	if !s.Interval.Contains(t) {
		return 0, fmt.Errorf("%w: t=%d outside %s", ErrInterval, t, s.Interval)
	}
	return s.Values[t-s.Interval.Tb], nil
}

// Mean returns z̄, the mean of the values.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Sum returns Σ z(t).
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Min returns the minimum value; NaN for an empty series.
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum value; NaN for an empty series.
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	m := s.Values[0]
	for _, v := range s.Values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Last returns the final value (e.g. a closing quote); NaN for empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return math.NaN()
	}
	return s.Values[len(s.Values)-1]
}

// Clone returns a deep copy.
func (s *Series) Clone() *Series {
	vals := make([]float64, len(s.Values))
	copy(vals, s.Values)
	return &Series{Interval: s.Interval, Values: vals}
}

// Slice returns the sub-series over [tb, te], which must lie inside the
// series interval. The returned series shares backing storage.
func (s *Series) Slice(tb, te int64) (*Series, error) {
	if tb < s.Interval.Tb || te > s.Interval.Te || te < tb {
		return nil, fmt.Errorf("%w: slice [%d,%d] of %s", ErrInterval, tb, te, s.Interval)
	}
	lo := tb - s.Interval.Tb
	hi := te - s.Interval.Tb + 1
	return &Series{Interval: Interval{Tb: tb, Te: te}, Values: s.Values[lo:hi]}, nil
}

// Add returns the pointwise sum of series defined over the *same* interval.
// This is the standard-dimension aggregation semantics of §3.3: the series
// of an aggregated cell is the sum of its descendants' series.
func Add(series ...*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	base := series[0]
	out := make([]float64, base.Len())
	copy(out, base.Values)
	for _, s := range series[1:] {
		if !s.Interval.Equal(base.Interval) {
			return nil, fmt.Errorf("%w: cannot add %s to %s", ErrInterval, s.Interval, base.Interval)
		}
		for i, v := range s.Values {
			out[i] += v
		}
	}
	return &Series{Interval: base.Interval, Values: out}, nil
}

// Concat returns the concatenation of series whose intervals form a
// contiguous partition (each starts one tick after the previous ends). This
// is the time-dimension aggregation semantics of §3.4.
func Concat(series ...*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, ErrEmpty
	}
	total := 0
	for i, s := range series {
		if i > 0 && !series[i-1].Interval.Adjacent(s.Interval) {
			return nil, fmt.Errorf("%w: %s does not follow %s", ErrInterval, s.Interval, series[i-1].Interval)
		}
		total += s.Len()
	}
	out := make([]float64, 0, total)
	for _, s := range series {
		out = append(out, s.Values...)
	}
	return &Series{
		Interval: Interval{Tb: series[0].Interval.Tb, Te: series[len(series)-1].Interval.Te},
		Values:   out,
	}, nil
}

// Scale returns a new series with every value multiplied by f.
func (s *Series) Scale(f float64) *Series {
	out := s.Clone()
	for i := range out.Values {
		out.Values[i] *= f
	}
	return out
}

// IsFinite reports whether every value is finite (no NaN/±Inf). Stream
// ingestion uses this as a data-quality guard.
func (s *Series) IsFinite() bool {
	for _, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders a compact description.
func (s *Series) String() string {
	return fmt.Sprintf("Series%s n=%d mean=%.4g", s.Interval, s.Len(), s.Mean())
}
