// Package cluster implements the multi-node scatter-gather tier
// (DESIGN.md §12): a Router that hash-partitions a record stream across N
// ingest nodes over the RGCWIRE1 TCP protocol with unit-boundary barrier
// broadcasts, a Gatherer that merges the nodes' published snapshots into
// one cluster-wide snapshot behind the serve.Source interface, and a
// checkpoint merger that flattens per-node checkpoints back into a
// single-engine file.
//
// The partition function is stream.Partitioner — byte-for-byte the
// in-process ShardedEngine's — so an N-node cluster holds exactly the
// state an N-shard engine would, and its merged checkpoints and query
// bodies are bitwise-identical to a single engine fed the same stream.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/cube"
	"repro/internal/stream"
	"repro/internal/wire"
)

// ErrConfig marks invalid router/gatherer configuration.
var ErrConfig = errors.New("cluster: invalid configuration")

// RouterConfig configures a Router.
type RouterConfig struct {
	// Schema is the cube schema records are partitioned under; it must
	// match the nodes' -spec.
	Schema *cube.Schema
	// Nodes are the ingest endpoints (streamd -ingest-listen addresses),
	// one per node, in partition order. The node count is the partition
	// count: reordering or resizing the list re-partitions the cluster.
	Nodes []string
	// TicksPerUnit is the unit width shared with every node (-unit). The
	// router broadcasts an advance barrier at each unit boundary so all
	// nodes close units in lockstep.
	TicksPerUnit int
	// BatchRecords is the per-node auto-flush threshold
	// (wire.DefaultBatchRecords when zero).
	BatchRecords int
	// Dial opens a connection to one node; nil means plain TCP. Tests
	// and benchmarks inject sinks here.
	Dial func(ctx context.Context, addr string) (io.WriteCloser, error)
	// DialAttempts bounds connect/reconnect attempts per operation
	// (default 8), with doubling backoff between them.
	DialAttempts int
	// Backoff is the base reconnect delay (default 100ms, doubling per
	// attempt).
	Backoff time.Duration
	// Logf, when set, receives reconnect diagnostics.
	Logf func(format string, args ...any)
}

// RouterStats counts a router's work.
type RouterStats struct {
	// Records routed, per destination node.
	Records []int64
	// Advances is the number of barrier broadcasts.
	Advances int64
	// Reconnects counts re-dials after a write failure.
	Reconnects int64
}

// Router partitions a record stream across the configured nodes. Records
// go to the node chosen by the shared partition function; at each unit
// boundary every node's pending batch is flushed and an advance control
// frame is broadcast, so the boundary is a cluster-wide barrier: no node
// sees a record of unit u+1 before every node was told to close unit u.
// Not safe for concurrent use — one goroutine owns the stream.
//
// Delivery is at-most-once per connection: records accepted by Append but
// still buffered when a connection fails are lost with it (the WAL on
// each node, not the router, is the durability story). A reconnect opens
// a fresh stream header on the same node.
type Router struct {
	cfg   RouterConfig
	part  *stream.Partitioner
	dims  int
	nodes []*nodeConn
	// unit is the current open unit; openEnd its first-excluded tick.
	unit    int64
	openEnd int64
	hb      []uint64
	stats   RouterStats
}

// NewRouter validates the configuration and builds a router. Connections
// are dialed lazily, on first use and after failures.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrConfig)
	}
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("%w: no nodes", ErrConfig)
	}
	if cfg.TicksPerUnit < 1 {
		return nil, fmt.Errorf("%w: ticks per unit %d", ErrConfig, cfg.TicksPerUnit)
	}
	part, err := stream.NewPartitioner(cfg.Schema, len(cfg.Nodes))
	if err != nil {
		return nil, err
	}
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = wire.DefaultBatchRecords
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 8
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.Dial == nil {
		cfg.Dial = func(ctx context.Context, addr string) (io.WriteCloser, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	r := &Router{
		cfg:     cfg,
		part:    part,
		dims:    len(cfg.Schema.Dims),
		unit:    0,
		openEnd: int64(cfg.TicksPerUnit),
		stats:   RouterStats{Records: make([]int64, len(cfg.Nodes))},
	}
	for i, addr := range cfg.Nodes {
		r.nodes = append(r.nodes, &nodeConn{router: r, addr: addr, id: i})
	}
	return r, nil
}

// Unit returns the current open unit.
func (r *Router) Unit() int64 { return r.unit }

// Stats returns a copy of the router's counters.
func (r *Router) Stats() RouterStats {
	s := r.stats
	s.Records = append([]int64(nil), r.stats.Records...)
	return s
}

// RouteBatch partitions one columnar batch. Boundary crossings inside the
// batch split it into segments, with a barrier broadcast between them —
// exactly the ShardedEngine.IngestBatch segmentation, across processes.
func (r *Router) RouteBatch(ctx context.Context, b *wire.Batch) error {
	if got := len(b.Cols); got != r.dims {
		return fmt.Errorf("%w: batch has %d dimensions, schema has %d", stream.ErrRecord, got, r.dims)
	}
	n := b.Len()
	if cap(r.hb) < n {
		r.hb = make([]uint64, n)
	}
	lo := 0
	for i := 0; i < n; i++ {
		tick := b.Ticks[i]
		if tick < r.unit*int64(r.cfg.TicksPerUnit) {
			return fmt.Errorf("%w: tick %d before open unit %d", stream.ErrRecord, tick, r.unit)
		}
		if tick < r.openEnd {
			continue
		}
		// Boundary: ship the open unit's segment, then barrier.
		if err := r.routeSegment(ctx, b, lo, i); err != nil {
			return err
		}
		lo = i
		if err := r.advance(ctx, tick/int64(r.cfg.TicksPerUnit)); err != nil {
			return err
		}
	}
	return r.routeSegment(ctx, b, lo, n)
}

// Append routes one record (the text-ingest path).
func (r *Router) Append(ctx context.Context, tick int64, members []int32, value float64) error {
	if len(members) != r.dims {
		return fmt.Errorf("%w: record has %d members, schema has %d", stream.ErrRecord, len(members), r.dims)
	}
	if tick < r.unit*int64(r.cfg.TicksPerUnit) {
		return fmt.Errorf("%w: tick %d before open unit %d", stream.ErrRecord, tick, r.unit)
	}
	if tick >= r.openEnd {
		if err := r.advance(ctx, tick/int64(r.cfg.TicksPerUnit)); err != nil {
			return err
		}
	}
	sid, err := r.part.Route(members)
	if err != nil {
		return err
	}
	nc := r.nodes[sid]
	if err := nc.do(ctx, func(w *wire.Writer) error {
		return w.Append(tick, members, value)
	}); err != nil {
		return err
	}
	r.stats.Records[sid]++
	return nil
}

// Advance applies an upstream barrier: flush and broadcast an advance
// to target, exactly as a boundary-crossing record would. Targets at or
// below the open unit are no-ops (barriers are idempotent).
func (r *Router) Advance(ctx context.Context, target int64) error {
	if target <= r.unit {
		return nil
	}
	return r.advance(ctx, target)
}

// routeSegment partitions records [lo,hi) of b — all inside the open
// unit — to their nodes.
func (r *Router) routeSegment(ctx context.Context, b *wire.Batch, lo, hi int) error {
	if lo >= hi {
		return nil
	}
	hb := r.hb[:hi-lo]
	if err := r.part.FoldColumns(b, lo, hi, hb); err != nil {
		return err
	}
	members := make([]int32, r.dims)
	for i := lo; i < hi; i++ {
		sid := int(hb[i-lo])
		for d := 0; d < r.dims; d++ {
			members[d] = b.Cols[d][i]
		}
		nc := r.nodes[sid]
		if err := nc.do(ctx, func(w *wire.Writer) error {
			return w.Append(b.Ticks[i], members, b.Values[i])
		}); err != nil {
			return err
		}
		r.stats.Records[sid]++
	}
	return nil
}

// advance is the cluster barrier: every node's pending records flush,
// then every node receives an advance-to-target control frame, and only
// then does the router accept the next unit's records.
func (r *Router) advance(ctx context.Context, target int64) error {
	for _, nc := range r.nodes {
		if err := nc.do(ctx, func(w *wire.Writer) error {
			return w.WriteControl(wire.Control{Op: wire.ControlAdvance, Unit: target})
		}); err != nil {
			return err
		}
	}
	r.unit = target
	r.openEnd = (target + 1) * int64(r.cfg.TicksPerUnit)
	r.stats.Advances++
	return nil
}

// Flush ships every node's pending batch without advancing.
func (r *Router) Flush(ctx context.Context) error {
	for _, nc := range r.nodes {
		if nc.w == nil {
			continue // never dialed or down: nothing buffered
		}
		if err := nc.do(ctx, func(w *wire.Writer) error { return w.Flush() }); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes every connection. The router is unusable
// afterwards.
func (r *Router) Close() error {
	var first error
	for _, nc := range r.nodes {
		if nc.w != nil {
			if err := nc.w.Flush(); err != nil && first == nil {
				first = err
			}
		}
		if err := nc.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// nodeConn is one node's lazily-dialed connection and stream writer.
type nodeConn struct {
	router *Router
	addr   string
	id     int
	c      io.WriteCloser
	w      *wire.Writer
}

// do runs op against the node's writer, dialing on demand and
// re-dialing with doubling backoff after a failure, up to the configured
// attempt budget. Records buffered in a failed writer are lost with the
// connection (at-most-once per connection); op itself is retried on the
// fresh stream.
func (nc *nodeConn) do(ctx context.Context, op func(*wire.Writer) error) error {
	cfg := &nc.router.cfg
	var lastErr error
	for attempt := 0; attempt < cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			if cfg.Logf != nil {
				cfg.Logf("node %d (%s): retrying after %v", nc.id, nc.addr, lastErr)
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("cluster: node %d (%s): %w (last error: %v)", nc.id, nc.addr, ctx.Err(), lastErr)
			case <-time.After(backoffDelay(cfg.Backoff, attempt-1)):
			}
		}
		if nc.w == nil {
			c, err := cfg.Dial(ctx, nc.addr)
			if err != nil {
				lastErr = err
				continue
			}
			w, err := wire.NewWriter(c, nc.router.dims)
			if err != nil {
				c.Close()
				lastErr = err
				continue
			}
			w.BatchRecords = cfg.BatchRecords
			nc.c, nc.w = c, w
			if attempt > 0 {
				nc.router.stats.Reconnects++
			}
		}
		if err := op(nc.w); err != nil {
			lastErr = err
			nc.close()
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: node %d (%s): giving up after %d attempts: %w",
		nc.id, nc.addr, cfg.DialAttempts, lastErr)
}

// close drops the connection; the next do dials afresh.
func (nc *nodeConn) close() error {
	var err error
	if nc.c != nil {
		err = nc.c.Close()
	}
	nc.c, nc.w = nil, nil
	return err
}

// maxBackoffDelay caps the doubling reconnect backoff.
const maxBackoffDelay = 5 * time.Second

// backoffDelay is base·2^attempt clamped to maxBackoffDelay.
func backoffDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxBackoffDelay; i++ {
		d *= 2
	}
	if d > maxBackoffDelay || d <= 0 {
		d = maxBackoffDelay
	}
	return d
}
