package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/persist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/wire"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

func testConfig(t testing.TB, schema *cube.Schema) stream.Config {
	t.Helper()
	return stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	}
}

// testNode is one in-process ingest node: an engine fed from a real TCP
// listener speaking RGCWIRE1 (batches and advance barriers), with the
// query API on an HTTP test server — the same wiring as a streamd
// process, without the subprocess.
type testNode struct {
	eng *stream.Engine
	ln  net.Listener
	ts  *httptest.Server
	// drained closes when the ingest connection reached EOF, after which
	// the engine is quiescent and safe to touch from the test goroutine.
	drained chan struct{}
}

func startNode(t *testing.T, cfg stream.Config, id string) *testNode {
	t.Helper()
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{eng: eng, ln: ln, drained: make(chan struct{})}
	srv := serve.New(eng, cfg.Schema)
	srv.SetInfo(func() query.InfoResponse {
		return query.InfoResponse{
			NodeID:      id,
			Role:        "node",
			Shards:      1,
			WireVersion: wire.Version,
			APIVersion:  query.APIVersion,
		}
	})
	n.ts = httptest.NewServer(srv)
	t.Cleanup(n.ts.Close)
	t.Cleanup(func() { ln.Close() })
	go func() {
		defer close(n.drained)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		r, err := wire.NewReader(conn)
		if err != nil {
			t.Errorf("node %s: reader: %v", id, err)
			return
		}
		var b wire.Batch
		for {
			_, c, isCtrl, err := r.NextAny(&b)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("node %s: decode: %v", id, err)
				return
			}
			if isCtrl {
				if _, err := eng.AdvanceTo(c.Unit); err != nil {
					t.Errorf("node %s: advance: %v", id, err)
					return
				}
				continue
			}
			if _, err := eng.IngestBatch(&b); err != nil {
				t.Errorf("node %s: ingest: %v", id, err)
				return
			}
		}
	}()
	return n
}

// feedRecords yields the deterministic test stream: `units` full units
// plus, when spill is true, one record of the following unit (the
// boundary trigger), tick-major over every m-cell.
func feedRecords(cfg stream.Config, units int, spill bool, emit func(tick int64, members []int32, value float64)) {
	for u := 0; u < units; u++ {
		for k := 0; k < cfg.TicksPerUnit; k++ {
			tick := int64(u*cfg.TicksPerUnit + k)
			for a := int32(0); a < 4; a++ {
				for b := int32(0); b < 4; b++ {
					emit(tick, []int32{a, b}, float64(tick)*float64(a+1)*0.5+float64(b))
				}
			}
		}
	}
	if spill {
		emit(int64(units*cfg.TicksPerUnit), []int32{0, 0}, 1)
	}
}

// TestClusterMatchesSingleEngine is the tentpole guarantee end to end,
// in-process: a 4-node cluster — router over real TCP, per-node engines,
// scatter-gather coordinator over real HTTP — must answer queries
// byte-identically to a single engine fed the same stream, and its
// merged checkpoint must be bitwise-identical to the single engine's.
func TestClusterMatchesSingleEngine(t *testing.T) {
	schema := testSchema(t)
	cfg := testConfig(t, schema)
	const units = 3

	// Reference: one engine, one server, over the whole stream.
	single, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedRecords(cfg, units, true, func(tick int64, members []int32, value float64) {
		if _, err := single.Ingest(members, tick, value); err != nil {
			t.Fatal(err)
		}
	})
	singleTS := httptest.NewServer(serve.New(single, schema))
	defer singleTS.Close()

	// The cluster: 4 nodes, a router streaming columnar batches over
	// TCP, and a coordinator gathering over HTTP.
	const numNodes = 4
	nodes := make([]*testNode, numNodes)
	addrs := make([]string, numNodes)
	endpoints := make([]string, numNodes)
	for i := range nodes {
		nodes[i] = startNode(t, cfg, fmt.Sprintf("node-%d", i))
		addrs[i] = nodes[i].ln.Addr().String()
		endpoints[i] = nodes[i].ts.URL
	}
	router, err := NewRouter(RouterConfig{
		Schema:       schema,
		Nodes:        addrs,
		TicksPerUnit: cfg.TicksPerUnit,
		BatchRecords: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Ship the stream as columnar batches of a size that never aligns
	// with unit boundaries, so RouteBatch's mid-batch segmentation and
	// barrier path both run.
	var batch wire.Batch
	batch.Reset(len(schema.Dims))
	flushBatch := func() {
		if batch.Len() == 0 {
			return
		}
		if err := router.RouteBatch(ctx, &batch); err != nil {
			t.Fatal(err)
		}
		batch.Reset(len(schema.Dims))
	}
	feedRecords(cfg, units, true, func(tick int64, members []int32, value float64) {
		batch.Append(tick, members, value)
		if batch.Len() == 7 {
			flushBatch()
		}
	})
	flushBatch()
	if err := router.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := router.Stats()
	if st.Advances != units {
		t.Fatalf("router made %d advances, want %d", st.Advances, units)
	}
	var total int64
	busy := 0
	for _, n := range st.Records {
		if n > 0 {
			busy++
		}
		total += n
	}
	// The 4 o-cells of this schema hash onto at least two nodes; nodes
	// that receive nothing still close units at the barriers and must
	// merge cleanly — the harder half of the guarantee.
	if busy < 2 {
		t.Fatalf("records all landed on one node: %v", st.Records)
	}
	if want := int64(units*cfg.TicksPerUnit*16 + 1); total != want {
		t.Fatalf("router shipped %d records, want %d", total, want)
	}

	// Coordinator: gather the nodes into one serve.Source.
	gatherer, err := NewGatherer(GatherConfig{
		Schema: schema, Endpoints: endpoints, NodeID: "coord",
		AlignAttempts: 100, AlignBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := serve.New(gatherer, schema)
	coordSrv.SetInfo(gatherer.Info)
	coordTS := httptest.NewServer(coordSrv)
	defer coordTS.Close()

	// The merged snapshot must align on the last closed unit and carry
	// exactly the single engine's analyst-visible state.
	deadline := time.Now().Add(10 * time.Second)
	var merged *stream.Snapshot
	for {
		if merged = gatherer.Snapshot(); merged != nil && merged.Unit == units-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never published unit %d (got %+v)", units-1, merged)
		}
		time.Sleep(10 * time.Millisecond)
	}
	want := single.Snapshot()
	if want == nil || want.Unit != merged.Unit {
		t.Fatalf("single engine at %+v, cluster at unit %d", want, merged.Unit)
	}
	if !reflect.DeepEqual(merged.Result.OLayer, want.Result.OLayer) ||
		!reflect.DeepEqual(merged.Result.Exceptions, want.Result.Exceptions) ||
		!reflect.DeepEqual(merged.Result.PathCells, want.Result.PathCells) ||
		!reflect.DeepEqual(merged.Alerts, want.Alerts) ||
		!reflect.DeepEqual(merged.History, want.History) {
		t.Fatal("merged cluster snapshot differs from single engine")
	}

	// Scatter-gather queries must be byte-identical to the single
	// engine's. Summary is excluded by design: its wall-clock stats
	// max-merge across nodes (DESIGN.md §12).
	for _, body := range []string{
		`{"queries":[{"kind":"exceptions","k":16}]}`,
		`{"queries":[{"kind":"alerts"}]}`,
		`{"queries":[{"kind":"slice","dim":0,"member":1,"k":8}]}`,
		`{"queries":[{"kind":"trend","cell":{"members":[1,0]},"k":3}]}`,
		`{"queries":[{"kind":"supporters","cell":{"members":[0,0]},"k":8}]}`,
		`{"queries":[{"kind":"exceptions","k":4},{"kind":"alerts"}]}`,
		`{"queries":[{"kind":"forecast","cell":{"members":[1,0]},"horizon":8,"threshold":40}]}`,
		`{"queries":[{"kind":"changes","k":4}]}`,
	} {
		wantResp := postQuery(t, singleTS.URL, body)
		gotResp := postQuery(t, coordTS.URL, body)
		if !bytes.Equal(gotResp, wantResp) {
			t.Errorf("query %s diverges:\ncluster: %s\nsingle:  %s", body, gotResp, wantResp)
		}
	}

	// The GET shims of the predictive kinds must also match byte for
	// byte — the coordinator serves them from the merged snapshot.
	for _, path := range []string{
		"/v1/forecast?members=1,0&horizon=8&threshold=40",
		"/v1/forecast?members=0,1&k=2&horizon=16",
		"/v1/changes?k=4",
	} {
		wantResp := getBytes(t, singleTS.URL+path)
		gotResp := getBytes(t, coordTS.URL+path)
		if !bytes.Equal(gotResp, wantResp) {
			t.Errorf("GET %s diverges:\ncluster: %s\nsingle:  %s", path, gotResp, wantResp)
		}
	}

	// The coordinator's info document reports the whole cluster.
	var info query.InfoResponse
	getJSON(t, coordTS.URL+"/v1/info", &info)
	if info.Role != "coordinator" || info.Shards != numNodes || info.NodeID != "coord" {
		t.Fatalf("coordinator info = %+v", info)
	}
	if len(info.Nodes) != numNodes {
		t.Fatalf("coordinator reports %d nodes, want %d", len(info.Nodes), numNodes)
	}
	for i, ns := range info.Nodes {
		if !ns.Reachable || ns.Info == nil || ns.Info.NodeID != fmt.Sprintf("node-%d", i) {
			t.Fatalf("node %d status = %+v", i, ns)
		}
	}
	if info.SnapshotUnit != units-1 {
		t.Fatalf("coordinator snapshot unit = %d, want %d", info.SnapshotUnit, units-1)
	}

	// Tear the stream down and compare checkpoints bitwise: per-node
	// files merged with MergeCheckpoints must equal the single engine's
	// checkpoint byte for byte.
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	files := make([]io.Reader, numNodes)
	for i, n := range nodes {
		select {
		case <-n.drained:
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d never drained", i)
		}
		if _, err := n.eng.Flush(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := persist.WriteCheckpoint(&buf, n.eng.Checkpoint()); err != nil {
			t.Fatal(err)
		}
		files[i] = &buf
	}
	if _, err := single.Flush(); err != nil {
		t.Fatal(err)
	}
	var singleCP bytes.Buffer
	if err := persist.WriteCheckpoint(&singleCP, single.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	mergedCP, err := MergeCheckpoints(files)
	if err != nil {
		t.Fatal(err)
	}
	var mergedBuf bytes.Buffer
	if err := persist.WriteCheckpoint(&mergedBuf, mergedCP); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBuf.Bytes(), singleCP.Bytes()) {
		t.Fatalf("merged cluster checkpoint is not bitwise-identical to the single engine's (%d vs %d bytes)",
			mergedBuf.Len(), singleCP.Len())
	}
}

func postQuery(t *testing.T, base, body string) []byte {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d: %s", body, resp.StatusCode, data)
	}
	return data
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return data
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// flakyConn fails every write once a fuse burns, then refuses forever;
// the next dial gets a fresh conn. Decoded together, the per-connection
// sinks reconstruct what the node actually received.
type flakySink struct {
	mu    sync.Mutex
	conns []*bytes.Buffer
	// failAt burns the fuse after this many successful writes on the
	// first connection (0 = never).
	failAt int
	writes int
}

type flakyConn struct {
	s    *flakySink
	buf  *bytes.Buffer
	dead bool
	// first marks the connection the fuse applies to.
	first bool
}

func (c *flakyConn) Write(p []byte) (int, error) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	if c.dead {
		return 0, fmt.Errorf("connection reset")
	}
	if c.first && c.s.failAt > 0 && c.s.writes >= c.s.failAt {
		c.dead = true
		return 0, fmt.Errorf("connection reset")
	}
	c.s.writes++
	return c.buf.Write(p)
}

func (c *flakyConn) Close() error { return nil }

func (s *flakySink) dial(context.Context, string) (io.WriteCloser, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := &bytes.Buffer{}
	s.conns = append(s.conns, buf)
	return &flakyConn{s: s, buf: buf, first: len(s.conns) == 1}, nil
}

// TestRouterReconnects proves a mid-stream connection failure is
// survived: the router re-dials with a fresh stream header and re-sends
// the failed operation, losing nothing when batches are unbuffered.
func TestRouterReconnects(t *testing.T) {
	schema := testSchema(t)
	sink := &flakySink{failAt: 5}
	router, err := NewRouter(RouterConfig{
		Schema:       schema,
		Nodes:        []string{"sink:0"},
		TicksPerUnit: 4,
		BatchRecords: 1, // flush every record: nothing buffered to lose
		Dial:         sink.dial,
		Backoff:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const records = 20
	for i := 0; i < records; i++ {
		if err := router.Append(ctx, int64(i), []int32{int32(i % 4), 0}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := router.Close(); err != nil {
		t.Fatal(err)
	}
	if got := router.Stats().Reconnects; got == 0 {
		t.Fatal("no reconnect recorded")
	}
	if len(sink.conns) < 2 {
		t.Fatalf("sink saw %d connections, want at least 2", len(sink.conns))
	}
	var total, advances int
	for i, buf := range sink.conns {
		if buf.Len() == 0 {
			continue
		}
		r, err := wire.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		var b wire.Batch
		for {
			n, _, isCtrl, err := r.NextAny(&b)
			if err == io.EOF {
				break
			}
			// The final frame of the failed connection may be torn —
			// exactly what the node-side decoder tolerates per
			// connection.
			if err != nil {
				break
			}
			if isCtrl {
				advances++
			} else {
				total += n
			}
		}
	}
	if total != records {
		t.Fatalf("sink decoded %d records, want %d", total, records)
	}
	if advances != (records-1)/4 {
		t.Fatalf("sink decoded %d advances, want %d", advances, (records-1)/4)
	}
}

// TestRouterRejects pins the router's config and record failure modes.
func TestRouterRejects(t *testing.T) {
	schema := testSchema(t)
	if _, err := NewRouter(RouterConfig{Schema: schema, TicksPerUnit: 4}); err == nil {
		t.Fatal("no nodes accepted")
	}
	if _, err := NewRouter(RouterConfig{Schema: schema, Nodes: []string{"x"}}); err == nil {
		t.Fatal("zero ticks-per-unit accepted")
	}
	if _, err := NewRouter(RouterConfig{Nodes: []string{"x"}, TicksPerUnit: 4}); err == nil {
		t.Fatal("nil schema accepted")
	}
	sink := &flakySink{}
	r, err := NewRouter(RouterConfig{
		Schema: schema, Nodes: []string{"sink:0"}, TicksPerUnit: 4, Dial: sink.dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := r.Append(ctx, 9, []int32{0, 0}, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(ctx, 1, []int32{0, 0}, 1); err == nil {
		t.Fatal("regressing tick accepted")
	}
	if err := r.Append(ctx, 9, []int32{0}, 1); err == nil {
		t.Fatal("wrong dimension count accepted")
	}
	if err := r.Append(ctx, 10, []int32{0, 99}, 1); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

// TestMergeCheckpointsRejectsSkew proves checkpoints cut at different
// stream positions refuse to merge.
func TestMergeCheckpointsRejectsSkew(t *testing.T) {
	schema := testSchema(t)
	cfg := testConfig(t, schema)
	a, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Ingest([]int32{0, 0}, 9, 1); err != nil { // unit 2 open
		t.Fatal(err)
	}
	if _, err := b.Ingest([]int32{0, 0}, 1, 1); err != nil { // unit 0 open
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := persist.WriteCheckpoint(&bufA, a.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if err := persist.WriteCheckpoint(&bufB, b.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeCheckpoints([]io.Reader{&bufA, &bufB}); err == nil {
		t.Fatal("unit-skewed checkpoints merged")
	}
	if _, err := MergeCheckpoints(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
}

// discardSink is a no-op dialer for throughput benchmarks: routing and
// wire encoding run for real, writes vanish.
type discardSink struct{}

func (discardSink) Write(p []byte) (int, error) { return len(p), nil }
func (discardSink) Close() error                { return nil }

// benchmarkRouter measures end-to-end routing throughput — partition
// fold, per-node batch building, frame encoding, barrier broadcast — at
// a given node count, with network writes discarded.
func benchmarkRouter(b *testing.B, numNodes int) {
	schema := testSchema(b)
	const ticksPerUnit = 64
	router, err := NewRouter(RouterConfig{
		Schema:       schema,
		Nodes:        make([]string, numNodes),
		TicksPerUnit: ticksPerUnit,
		Dial: func(context.Context, string) (io.WriteCloser, error) {
			return discardSink{}, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	// One unit of records per op, pre-built as columnar batches.
	var batches []*wire.Batch
	cur := &wire.Batch{}
	cur.Reset(len(schema.Dims))
	records := 0
	for k := 0; k < ticksPerUnit; k++ {
		for a := int32(0); a < 4; a++ {
			for c := int32(0); c < 4; c++ {
				cur.Append(int64(k), []int32{a, c}, float64(k)*0.5)
				records++
				if cur.Len() == 512 {
					batches = append(batches, cur)
					cur = &wire.Batch{}
					cur.Reset(len(schema.Dims))
				}
			}
		}
	}
	if cur.Len() > 0 {
		batches = append(batches, cur)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Shift each op's ticks into a fresh unit so every op crosses
		// one barrier, like steady-state streaming.
		base := int64(i) * ticksPerUnit
		for _, src := range batches {
			shifted := &wire.Batch{Ticks: make([]int64, len(src.Ticks)), Cols: src.Cols, Values: src.Values}
			for j, tk := range src.Ticks {
				shifted.Ticks[j] = tk + base
			}
			if err := router.RouteBatch(ctx, shifted); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := router.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkRouter1Node(b *testing.B)  { benchmarkRouter(b, 1) }
func BenchmarkRouter2Nodes(b *testing.B) { benchmarkRouter(b, 2) }
func BenchmarkRouter4Nodes(b *testing.B) { benchmarkRouter(b, 4) }
