package cluster

import (
	"fmt"
	"io"

	"repro/internal/persist"
	"repro/internal/stream"
)

// MergeCheckpoints reads one checkpoint per node — single-engine v1/v3
// files or sharded v2 sets alike — and flattens them into one
// single-engine checkpoint. Nodes hold disjoint cells by the partition
// invariant and close units in lockstep at the router's barriers, so the
// merge is lossless and the result is byte-comparable (via
// persist.WriteCheckpoint) to a single engine fed the whole stream.
//
// The same cross-node validation as in-process sharding applies: every
// checkpoint must agree on the open unit, the closed-unit count, and the
// WAL watermark. Disagreement means the files were cut at different
// stream positions and must not be merged.
func MergeCheckpoints(nodes []io.Reader) (*stream.Checkpoint, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: no checkpoints", ErrConfig)
	}
	var all stream.ShardedCheckpoint
	for i, r := range nodes {
		scp, err := persist.ReadShardedCheckpoint(r)
		if err != nil {
			return nil, fmt.Errorf("cluster: node checkpoint %d: %w", i, err)
		}
		all.Shards = append(all.Shards, scp.Shards...)
	}
	cp, err := all.Merge()
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return cp, nil
}
