package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/cube"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/wire"
)

// GatherConfig configures a Gatherer.
type GatherConfig struct {
	// Schema is the cluster's cube schema; decoded snapshots are
	// validated against it.
	Schema *cube.Schema
	// Endpoints are the nodes' HTTP base URLs (streamd -listen), in the
	// router's partition order.
	Endpoints []string
	// HTTP is the client used for node calls; nil means a 5s-timeout
	// default.
	HTTP *http.Client
	// NodeID names the coordinator in its own /v1/info document.
	NodeID string
	// AlignAttempts bounds how many watermark-alignment rounds one
	// refresh makes before keeping the previous snapshot (default 10).
	AlignAttempts int
	// AlignBackoff is the delay between alignment rounds (default 20ms).
	// Nodes advance within a barrier broadcast of each other, so the
	// window is short.
	AlignBackoff time.Duration
	// Logf, when set, receives refresh diagnostics.
	Logf func(format string, args ...any)
}

// Gatherer is the scatter-gather query tier: it implements serve.Source
// by fetching every node's published snapshot at a common closed unit
// and merging them into one cluster-wide snapshot. Wrap it in serve.New
// to get a coordinator — the full query API over the merged view.
//
// Alignment is watermark-based: a refresh first exchanges watermarks
// (GET /v1/info) and only fetches snapshots once every node publishes
// the same unit; a barrier race that still slips through is caught by
// MergeSnapshots and retried. A refresh that cannot align keeps the
// previous merged snapshot — the coordinator serves a consistent, maybe
// slightly stale view, never a torn one.
type Gatherer struct {
	cfg GatherConfig

	// mu serializes refreshes; snapshot reads are lock-free.
	mu   sync.Mutex
	cur  *stream.Snapshot
	unit int64
}

// NewGatherer validates the configuration and builds a gatherer.
func NewGatherer(cfg GatherConfig) (*Gatherer, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrConfig)
	}
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("%w: no endpoints", ErrConfig)
	}
	if cfg.HTTP == nil {
		cfg.HTTP = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.AlignAttempts <= 0 {
		cfg.AlignAttempts = 10
	}
	if cfg.AlignBackoff <= 0 {
		cfg.AlignBackoff = 20 * time.Millisecond
	}
	return &Gatherer{cfg: cfg, unit: -1}, nil
}

// Snapshot implements serve.Source: it refreshes the merged snapshot
// from the nodes (best-effort — failures keep the last good merge) and
// returns it. Nil until every node has published its first unit.
func (g *Gatherer) Snapshot() *stream.Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.refreshLocked(context.Background()); err != nil && g.cfg.Logf != nil {
		g.cfg.Logf("gather: refresh: %v", err)
	}
	return g.cur
}

// Refresh forces one refresh round and reports its outcome. The merged
// snapshot is updated only on success.
func (g *Gatherer) Refresh(ctx context.Context) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refreshLocked(ctx)
}

func (g *Gatherer) refreshLocked(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < g.cfg.AlignAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("cluster: gather: %w (last error: %v)", ctx.Err(), lastErr)
			case <-time.After(g.cfg.AlignBackoff):
			}
		}
		// Watermark exchange: find the unit every node has published.
		target, err := g.watermark(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if target < 0 {
			// Some node has no snapshot yet; nothing to merge.
			return fmt.Errorf("cluster: gather: no common published unit yet")
		}
		if target == g.unit && g.cur != nil {
			return nil // already merged this unit
		}
		snaps, err := g.fetchSnapshots(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		merged, err := stream.MergeSnapshots(g.cfg.Schema, snaps)
		if err != nil {
			// A node advanced between the exchange and the fetch; align
			// again.
			lastErr = err
			continue
		}
		g.cur, g.unit = merged, merged.Unit
		return nil
	}
	return fmt.Errorf("cluster: gather: could not align after %d attempts: %w",
		g.cfg.AlignAttempts, lastErr)
}

// watermark exchanges /v1/info with every node and returns the lowest
// published snapshot unit, or -1 when any node has none. An unreachable
// node fails the exchange.
func (g *Gatherer) watermark(ctx context.Context) (int64, error) {
	low := int64(-1)
	for i, ep := range g.cfg.Endpoints {
		info, err := g.nodeInfo(ctx, ep)
		if err != nil {
			return 0, fmt.Errorf("node %d (%s): %w", i, ep, err)
		}
		if info.SnapshotUnit < 0 {
			return -1, nil
		}
		if low < 0 || info.SnapshotUnit < low {
			low = info.SnapshotUnit
		}
	}
	return low, nil
}

// fetchSnapshots pulls and decodes every node's /v1/snapshot.
func (g *Gatherer) fetchSnapshots(ctx context.Context) ([]*stream.Snapshot, error) {
	snaps := make([]*stream.Snapshot, len(g.cfg.Endpoints))
	for i, ep := range g.cfg.Endpoints {
		data, err := g.get(ctx, ep+"/v1/snapshot")
		if err != nil {
			return nil, fmt.Errorf("node %d (%s): %w", i, ep, err)
		}
		if snaps[i], err = stream.DecodeSnapshot(g.cfg.Schema, data); err != nil {
			return nil, fmt.Errorf("node %d (%s): %w", i, ep, err)
		}
	}
	return snaps, nil
}

// nodeInfo fetches one node's /v1/info document.
func (g *Gatherer) nodeInfo(ctx context.Context, endpoint string) (*query.InfoResponse, error) {
	data, err := g.get(ctx, endpoint+"/v1/info")
	if err != nil {
		return nil, err
	}
	var info query.InfoResponse
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("decoding info: %w", err)
	}
	return &info, nil
}

func (g *Gatherer) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.cfg.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, firstLine(data))
	}
	return data, nil
}

// Nodes probes every node's /v1/info and reports per-node status, in
// endpoint order. Unreachable nodes are reported, not fatal.
func (g *Gatherer) Nodes(ctx context.Context) []query.NodeStatus {
	out := make([]query.NodeStatus, len(g.cfg.Endpoints))
	for i, ep := range g.cfg.Endpoints {
		out[i] = query.NodeStatus{Endpoint: ep}
		info, err := g.nodeInfo(ctx, ep)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		out[i].Reachable = true
		out[i].Info = info
	}
	return out
}

// Info builds the coordinator's /v1/info document — its own identity
// plus the per-node statuses — for serve.Server.SetInfo. The serving
// layer fills SnapshotUnit/UnitsDone from the merged snapshot.
func (g *Gatherer) Info() query.InfoResponse {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return query.InfoResponse{
		NodeID:      g.cfg.NodeID,
		Role:        "coordinator",
		Shards:      len(g.cfg.Endpoints),
		WireVersion: wire.Version,
		APIVersion:  query.APIVersion,
		Nodes:       g.Nodes(ctx),
	}
}

// firstLine trims an error body for diagnostics.
func firstLine(data []byte) string {
	const max = 200
	s := string(data)
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' || i >= max {
			return s[:i]
		}
	}
	return s
}
