package tilt

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseLevels decodes the command-line tilt chain syntax shared by streamd
// -tilt and regcube replay -tilt. "" keeps the flat history (nil levels);
// "calendar" is the paper's quarter/hour/day/month chain (each engine unit
// plays the quarter); "log<N>x<S>" is N doubling-coverage levels of S
// slots each; anything else is an explicit "name:multiple:slots,..."
// chain, finest level first (its multiple is implied 1 — one engine unit).
func ParseLevels(s string) ([]Level, error) {
	if s == "" {
		return nil, nil
	}
	if s == "calendar" {
		return CalendarLevels(), nil
	}
	var n, slots int
	if c, err := fmt.Sscanf(s, "log%dx%d", &n, &slots); c == 2 && err == nil {
		// Sscanf accepts signs and ignores trailing text; require an exact
		// round trip so log0x4, log-1x4, and log3x4junk all fail loudly
		// instead of panicking or silently disabling tilt.
		if n < 1 || slots < 1 || fmt.Sprintf("log%dx%d", n, slots) != s {
			return nil, fmt.Errorf("%q: want log<levels>x<slots> with both ≥ 1", s)
		}
		return LogarithmicLevels(n, 1, slots), nil
	}
	var levels []Level
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("level %q: want name:multiple:slots", part)
		}
		mult, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("level %q multiple: %w", part, err)
		}
		sl, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("level %q slots: %w", part, err)
		}
		levels = append(levels, Level{Name: fields[0], Multiple: mult, Slots: sl})
	}
	return levels, nil
}
