package tilt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/regression"
	"repro/internal/timeseries"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func feed(t *testing.T, f *Frame, s *timeseries.Series) {
	t.Helper()
	for i, z := range s.Values {
		if err := f.Add(s.Interval.Tb+int64(i), z); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExample3Savings(t *testing.T) {
	f := MustNew(CalendarLevels(), 0)
	if got := f.SlotCapacity(); got != 71 {
		t.Fatalf("SlotCapacity = %d, want 71 (paper Example 3)", got)
	}
	ratio := f.CompressionVsRaw(366 * 24 * 4)
	if ratio < 490 || ratio > 500 {
		t.Fatalf("compression ratio = %g, want ≈495", ratio)
	}
}

func TestNewValidation(t *testing.T) {
	cases := [][]Level{
		nil,
		{{Name: "a", Multiple: 0, Slots: 4}},
		{{Name: "a", Multiple: 2, Slots: 0}},
		// Level "a" retains fewer slots than level "b" needs children.
		{{Name: "a", Multiple: 2, Slots: 2}, {Name: "b", Multiple: 3, Slots: 1}},
	}
	for i, levels := range cases {
		if _, err := New(levels, 0); err == nil {
			t.Fatalf("case %d: expected config error", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil, 0)
}

func TestAddTickDiscipline(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 3, Slots: 4}}, 10)
	if f.NextTick() != 10 {
		t.Fatalf("NextTick = %d", f.NextTick())
	}
	if err := f.Add(11, 1); err == nil {
		t.Fatal("expected out-of-order rejection")
	}
	if err := f.Add(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(11, math.NaN()); err == nil {
		t.Fatal("expected NaN rejection")
	}
	if f.Ticks() != 1 {
		t.Fatalf("Ticks = %d", f.Ticks())
	}
}

func TestUnitCompletionAndSlots(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 4, Slots: 3}}, 0)
	s := timeseries.Ramp(0, 11, 1, 0.5) // 2 complete units + 3 leftover ticks
	feed(t, f, s)
	slots := f.SlotsAt(0)
	if len(slots) != 2 {
		t.Fatalf("completed slots = %d, want 2", len(slots))
	}
	if slots[0].Unit != 0 || slots[1].Unit != 1 {
		t.Fatalf("unit indices = %d,%d", slots[0].Unit, slots[1].Unit)
	}
	// Each slot must equal the direct fit of its ticks.
	sub, _ := s.Slice(0, 3)
	want := regression.MustFit(sub)
	if !almostEq(slots[0].ISB.Slope, want.Slope, 1e-10) || !almostEq(slots[0].ISB.Base, want.Base, 1e-10) {
		t.Fatalf("slot 0 = %v, want %v", slots[0].ISB, want)
	}
	// The partial unit holds the 3 leftover ticks.
	part, ok := f.Partial()
	if !ok {
		t.Fatal("expected a partial unit")
	}
	if part.Tb != 8 || part.Te != 10 {
		t.Fatalf("partial interval [%d,%d]", part.Tb, part.Te)
	}
}

func TestPartialEmpty(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 2, Slots: 2}}, 0)
	if _, ok := f.Partial(); ok {
		t.Fatal("fresh frame should have no partial")
	}
	_ = f.Add(0, 1)
	_ = f.Add(1, 2) // completes the unit; partial empty again
	if _, ok := f.Partial(); ok {
		t.Fatal("no partial right after unit completion")
	}
}

func TestEviction(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 2, Slots: 3}}, 0)
	feed(t, f, timeseries.Ramp(0, 12, 0, 1)) // 6 units, retention 3
	slots := f.SlotsAt(0)
	if len(slots) != 3 {
		t.Fatalf("retained = %d, want 3", len(slots))
	}
	if slots[0].Unit != 3 || slots[2].Unit != 5 {
		t.Fatalf("retained units = %d..%d, want 3..5", slots[0].Unit, slots[2].Unit)
	}
	if f.Completed(0) != 6 {
		t.Fatalf("Completed = %d, want 6", f.Completed(0))
	}
}

func TestPromotionCascade(t *testing.T) {
	// quarters of 3 ticks; hours of 2 quarters; days of 2 hours.
	levels := []Level{
		{Name: "q", Multiple: 3, Slots: 4},
		{Name: "h", Multiple: 2, Slots: 4},
		{Name: "d", Multiple: 2, Slots: 2},
	}
	f := MustNew(levels, 0)
	s := timeseries.NewSynth(3).Linear(0, 24, 5, 0.2, 0.4) // exactly 2 days
	feed(t, f, s)

	if got := f.Completed(0); got != 8 {
		t.Fatalf("quarters completed = %d, want 8", got)
	}
	if got := f.Completed(1); got != 4 {
		t.Fatalf("hours completed = %d, want 4", got)
	}
	if got := f.Completed(2); got != 2 {
		t.Fatalf("days completed = %d, want 2", got)
	}

	// Every promoted slot must equal the direct fit of its tick range.
	for lvl := 0; lvl < 3; lvl++ {
		span := f.Span(lvl)
		for _, slot := range f.SlotsAt(lvl) {
			lo := slot.Unit * span
			sub, err := s.Slice(lo, lo+span-1)
			if err != nil {
				t.Fatal(err)
			}
			want := regression.MustFit(sub)
			if !almostEq(slot.ISB.Slope, want.Slope, 1e-9) || !almostEq(slot.ISB.Base, want.Base, 1e-9) {
				t.Fatalf("level %d unit %d: %v want %v", lvl, slot.Unit, slot.ISB, want)
			}
		}
	}
}

func TestSpan(t *testing.T) {
	f := MustNew(CalendarLevels(), 0)
	wants := []int64{15, 60, 1440, 44640}
	for i, w := range wants {
		if got := f.Span(i); got != w {
			t.Fatalf("Span(%d) = %d, want %d", i, got, w)
		}
	}
	if f.Span(-1) != 0 || f.Span(99) != 0 {
		t.Fatal("out-of-range Span should be 0")
	}
}

func TestQueryAggregatesTail(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 5, Slots: 8}}, 0)
	s := timeseries.NewSynth(7).Linear(0, 40, 2, -0.1, 0.3) // 8 units
	feed(t, f, s)
	// Query last 4 units == direct fit over ticks [20,39].
	got, err := f.Query(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := s.Slice(20, 39)
	want := regression.MustFit(sub)
	if !almostEq(got.Slope, want.Slope, 1e-9) || !almostEq(got.Base, want.Base, 1e-9) {
		t.Fatalf("Query = %v, want %v", got, want)
	}
}

func TestQueryErrors(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 2, Slots: 4}}, 0)
	_ = f.Add(0, 1)
	_ = f.Add(1, 2) // one completed unit
	if _, err := f.Query(0, 2); err == nil {
		t.Fatal("expected error: only 1 unit retained")
	}
	if _, err := f.Query(0, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := f.Query(1, 1); err == nil {
		t.Fatal("expected error for bad level")
	}
	if _, err := f.Query(-1, 1); err == nil {
		t.Fatal("expected error for negative level")
	}
}

func TestSlotsAtOutOfRange(t *testing.T) {
	f := MustNew(CalendarLevels(), 0)
	if f.SlotsAt(-1) != nil || f.SlotsAt(9) != nil {
		t.Fatal("out-of-range SlotsAt should be nil")
	}
	if f.Completed(-1) != 0 || f.Completed(9) != 0 {
		t.Fatal("out-of-range Completed should be 0")
	}
}

func TestSlotsInUseBounded(t *testing.T) {
	f := MustNew(CalendarLevels(), 0)
	// Feed 3 days of minutes.
	g := timeseries.NewSynth(11)
	s := g.Linear(0, 3*24*60, 10, 0.001, 1)
	feed(t, f, s)
	if f.SlotsInUse() > f.SlotCapacity() {
		t.Fatalf("SlotsInUse %d exceeds capacity %d", f.SlotsInUse(), f.SlotCapacity())
	}
	if f.Levels() != 4 {
		t.Fatalf("Levels = %d", f.Levels())
	}
	if f.LevelName(2) != "day" {
		t.Fatalf("LevelName(2) = %q", f.LevelName(2))
	}
	// 3 days of minutes = 288 quarters, 72 hours, 3 days, 0 months.
	if f.Completed(0) != 288 || f.Completed(1) != 72 || f.Completed(2) != 3 || f.Completed(3) != 0 {
		t.Fatalf("completions = %d/%d/%d/%d", f.Completed(0), f.Completed(1), f.Completed(2), f.Completed(3))
	}
}

func TestLogarithmicLevels(t *testing.T) {
	levels := LogarithmicLevels(5, 4, 4)
	f := MustNew(levels, 0)
	if f.Levels() != 5 {
		t.Fatalf("Levels = %d", f.Levels())
	}
	// Coverage doubles per level: spans 4, 8, 16, 32, 64.
	for i, want := range []int64{4, 8, 16, 32, 64} {
		if f.Span(i) != want {
			t.Fatalf("Span(%d) = %d, want %d", i, f.Span(i), want)
		}
	}
	feed(t, f, timeseries.NewSynth(13).Linear(0, 256, 1, 0.05, 0.2))
	if f.Completed(4) != 4 {
		t.Fatalf("top-level completions = %d, want 4", f.Completed(4))
	}
}

func TestNonZeroStartTick(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 3, Slots: 4}}, 100)
	s := timeseries.Ramp(100, 6, 0, 1)
	feed(t, f, s)
	slots := f.SlotsAt(0)
	if len(slots) != 2 {
		t.Fatalf("slots = %d", len(slots))
	}
	if slots[0].ISB.Tb != 100 || slots[0].ISB.Te != 102 {
		t.Fatalf("slot interval [%d,%d]", slots[0].ISB.Tb, slots[0].ISB.Te)
	}
}

// Property: for random streams, every retained slot at every level equals
// the direct OLS fit of the raw ticks it covers, and query results equal
// direct fits over the combined range. This is the §4.5 guarantee that the
// tilt frame loses nothing within its retention horizon.
func TestFrameSlotsMatchDirectFitsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(91))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		levels := []Level{
			{Name: "a", Multiple: 2 + r.Intn(4), Slots: 4 + r.Intn(4)},
			{Name: "b", Multiple: 2 + r.Intn(3), Slots: 3 + r.Intn(3)},
		}
		// Ensure retention supports promotion.
		if levels[0].Slots < levels[1].Multiple {
			levels[0].Slots = levels[1].Multiple
		}
		fr, err := New(levels, 0)
		if err != nil {
			return false
		}
		n := 20 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 5
		}
		s := timeseries.MustNew(0, vals)
		for i, z := range vals {
			if fr.Add(int64(i), z) != nil {
				return false
			}
		}
		for lvl := 0; lvl < fr.Levels(); lvl++ {
			span := fr.Span(lvl)
			for _, slot := range fr.SlotsAt(lvl) {
				lo := slot.Unit * span
				sub, err := s.Slice(lo, lo+span-1)
				if err != nil {
					return false
				}
				want := regression.MustFit(sub)
				if !almostEq(slot.ISB.Slope, want.Slope, 1e-7) || !almostEq(slot.ISB.Base, want.Base, 1e-7) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
