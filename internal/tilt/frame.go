// Package tilt implements the paper's tilt time frame (§4.1): time is
// registered at multiple granularities, with the most recent time at the
// finest granularity and progressively older time at coarser granularity.
//
// A Frame is configured as a chain of levels (e.g. quarter → hour → day →
// month). Raw stream ticks feed an O(1) regression accumulator; whenever a
// unit at some level completes, its ISB occupies a slot at that level, and
// whenever enough units complete to fill one unit of the next level they
// are combined with the time-dimension aggregation theorem (Theorem 3.3)
// and promoted (§4.5). Slots at each level are retained in a bounded ring,
// so total state is the paper's "71 units instead of 35,136".
package tilt

import (
	"errors"
	"fmt"

	"repro/internal/regression"
)

// ErrConfig is returned for invalid frame configurations.
var ErrConfig = errors.New("tilt: invalid frame configuration")

// ErrQuery is returned for unsatisfiable queries.
var ErrQuery = errors.New("tilt: unsatisfiable query")

// Level configures one granularity of a tilt frame.
type Level struct {
	// Name labels the granularity ("quarter", "hour", ...).
	Name string
	// Multiple is the number of next-finer units composing one unit of
	// this level. For the finest level it is the number of raw stream
	// ticks per unit (e.g. 15 minutes per quarter).
	Multiple int
	// Slots is how many completed units this level retains.
	Slots int
}

// CalendarLevels returns the paper's Example 3 configuration: stream ticks
// are minutes; the frame keeps 4 quarters (15 min each), 24 hours, 31 days,
// and 12 months (a month is modelled as 31 days so the slot arithmetic
// matches the paper's 4+24+31+12 = 71 units).
func CalendarLevels() []Level {
	return []Level{
		{Name: "quarter", Multiple: 15, Slots: 4},
		{Name: "hour", Multiple: 4, Slots: 24},
		{Name: "day", Multiple: 24, Slots: 31},
		{Name: "month", Multiple: 31, Slots: 12},
	}
}

// LogarithmicLevels returns a natural tilt frame (§6 extensions): level i
// aggregates 2 units of level i−1 and retains `slots` units, so coverage
// doubles per level while state stays linear in the number of levels.
func LogarithmicLevels(levels, ticksPerUnit, slots int) []Level {
	out := make([]Level, levels)
	for i := range out {
		mult := 2
		if i == 0 {
			mult = ticksPerUnit
		}
		out[i] = Level{Name: fmt.Sprintf("log%d", i), Multiple: mult, Slots: slots}
	}
	return out
}

// Slot is one completed unit at some level: the unit's ordinal since the
// frame origin and the ISB of the regression over the unit's ticks.
type Slot struct {
	Unit int64          `json:"unit"` // 0-based unit index at this level since frame start
	ISB  regression.ISB `json:"isb"`
}

type levelState struct {
	cfg   Level
	span  int64  // raw ticks per unit of this level
	slots []Slot // completed units, oldest first, len ≤ cfg.Slots
	next  int64  // index of the next unit to complete
}

// Frame is a multi-granularity register of regression measures over an
// ever-growing time-series stream. The zero value is unusable; use New.
type Frame struct {
	start  int64
	levels []levelState
	acc    *regression.Accumulator
	ticks  int64 // raw ticks consumed
}

// New validates the level chain and returns an empty frame whose first raw
// tick will be startTick. Each level needs Multiple ≥ 1 (≥ 2 above the
// finest to be meaningful) and Slots ≥ Multiple of the level above it so
// promotion always finds its children still resident.
func New(levels []Level, startTick int64) (*Frame, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrConfig)
	}
	f := &Frame{start: startTick, acc: regression.NewAccumulator(startTick)}
	span := int64(1)
	for i, lv := range levels {
		if lv.Multiple < 1 {
			return nil, fmt.Errorf("%w: level %q multiple %d", ErrConfig, lv.Name, lv.Multiple)
		}
		if lv.Slots < 1 {
			return nil, fmt.Errorf("%w: level %q slots %d", ErrConfig, lv.Name, lv.Slots)
		}
		if i+1 < len(levels) && lv.Slots < levels[i+1].Multiple {
			return nil, fmt.Errorf("%w: level %q retains %d slots but level %q needs %d children",
				ErrConfig, lv.Name, lv.Slots, levels[i+1].Name, levels[i+1].Multiple)
		}
		span *= int64(lv.Multiple)
		f.levels = append(f.levels, levelState{cfg: lv, span: span})
	}
	return f, nil
}

// MustNew is New for tests and examples; it panics on error.
func MustNew(levels []Level, startTick int64) *Frame {
	f, err := New(levels, startTick)
	if err != nil {
		panic(err)
	}
	return f
}

// Levels returns the number of granularity levels.
func (f *Frame) Levels() int { return len(f.levels) }

// LevelName returns the configured name of level i.
func (f *Frame) LevelName(i int) string { return f.levels[i].cfg.Name }

// Ticks returns the number of raw ticks consumed so far.
func (f *Frame) Ticks() int64 { return f.ticks }

// NextTick returns the tick the next Add must carry.
func (f *Frame) NextTick() int64 { return f.start + f.ticks }

// Add consumes the observation z at raw tick t. Ticks must be consecutive
// from the frame's start tick. Completing a finest-level unit triggers the
// §4.5 promotion cascade.
func (f *Frame) Add(t int64, z float64) error {
	if err := f.acc.Add(t, z); err != nil {
		return err
	}
	f.ticks++
	if f.acc.N() == int64(f.levels[0].cfg.Multiple) {
		isb, err := f.acc.Snapshot()
		if err != nil {
			return err
		}
		f.completeUnit(0, isb)
		f.acc.Reset(f.start + f.ticks)
	}
	return nil
}

// AdvanceTo registers absent readings as zeros for every raw tick from
// NextTick up to (excluding) t, completing units and cascading promotions
// on the way — the frame-level analogue of Accumulator.AdvanceTo, and
// bit-for-bit interchangeable with calling Add(NextTick(), 0) in a loop.
// Within a unit the fill is O(1); the total cost is O(units crossed), not
// O(ticks skipped). A t at or before NextTick is a no-op.
func (f *Frame) AdvanceTo(t int64) {
	mult := int64(f.levels[0].cfg.Multiple)
	for {
		next := f.start + f.ticks
		if t <= next {
			return
		}
		step := t - next
		if rem := mult - f.acc.N(); step > rem {
			step = rem
		}
		f.acc.AdvanceTo(next + step)
		f.ticks += step
		if f.acc.N() == mult {
			isb, err := f.acc.Snapshot()
			if err != nil {
				// The accumulator holds mult ≥ 1 points; Snapshot cannot
				// fail on zero fills.
				panic(fmt.Sprintf("tilt: advance snapshot failed: %v", err))
			}
			f.completeUnit(0, isb)
			f.acc.Reset(f.start + f.ticks)
		}
	}
}

// completeUnit registers a finished unit ISB at level i and cascades
// promotion when it fills a unit of level i+1.
func (f *Frame) completeUnit(i int, isb regression.ISB) {
	ls := &f.levels[i]
	ls.slots = append(ls.slots, Slot{Unit: ls.next, ISB: isb})
	ls.next++

	if i+1 < len(f.levels) {
		mult := int64(f.levels[i+1].cfg.Multiple)
		if ls.next%mult == 0 {
			// The most recent `mult` slots are exactly the children of the
			// parent unit (Slots ≥ mult was validated at construction).
			children := ls.slots[len(ls.slots)-int(mult):]
			isbs := make([]regression.ISB, len(children))
			for j, s := range children {
				isbs[j] = s.ISB
			}
			parent, err := regression.AggregateTime(isbs...)
			if err != nil {
				// Children are adjacent complete units by construction;
				// failure here indicates internal corruption.
				panic(fmt.Sprintf("tilt: promotion aggregation failed: %v", err))
			}
			f.completeUnit(i+1, parent)
		}
	}
	// Evict beyond retention after promotion so children were available.
	if over := len(ls.slots) - ls.cfg.Slots; over > 0 {
		ls.slots = append(ls.slots[:0], ls.slots[over:]...)
	}
}

// SlotsAt returns a copy of the completed, retained units at level i,
// oldest first.
func (f *Frame) SlotsAt(i int) []Slot {
	if i < 0 || i >= len(f.levels) {
		return nil
	}
	out := make([]Slot, len(f.levels[i].slots))
	copy(out, f.levels[i].slots)
	return out
}

// Completed returns how many units have ever completed at level i
// (including ones already evicted).
func (f *Frame) Completed(i int) int64 {
	if i < 0 || i >= len(f.levels) {
		return 0
	}
	return f.levels[i].next
}

// Query returns the regression over the last k completed units at level i,
// computed purely from stored ISBs with Theorem 3.3 — e.g. "the last hour
// with the precision of a quarter" is Query(0, 4).
func (f *Frame) Query(i, k int) (regression.ISB, error) {
	if i < 0 || i >= len(f.levels) {
		return regression.ISB{}, fmt.Errorf("%w: level %d of %d", ErrQuery, i, len(f.levels))
	}
	ls := &f.levels[i]
	if k <= 0 || k > len(ls.slots) {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested at level %q, %d retained",
			ErrQuery, k, ls.cfg.Name, len(ls.slots))
	}
	tail := ls.slots[len(ls.slots)-k:]
	isbs := make([]regression.ISB, k)
	for j, s := range tail {
		isbs[j] = s.ISB
	}
	return regression.AggregateTime(isbs...)
}

// Partial returns the ISB over the raw ticks of the current incomplete
// finest-level unit, and false when that unit has no points yet. This is
// the "Now" edge of Figure 4.
func (f *Frame) Partial() (regression.ISB, bool) {
	if f.acc.Empty() {
		return regression.ISB{}, false
	}
	isb, err := f.acc.Snapshot()
	if err != nil {
		return regression.ISB{}, false
	}
	return isb, true
}

// SlotCapacity returns the total number of slots the frame can hold — the
// paper's "71 units" for the calendar configuration.
func (f *Frame) SlotCapacity() int {
	var total int
	for i := range f.levels {
		total += f.levels[i].cfg.Slots
	}
	return total
}

// SlotsInUse returns the number of retained completed units across levels.
func (f *Frame) SlotsInUse() int {
	var total int
	for i := range f.levels {
		total += len(f.levels[i].slots)
	}
	return total
}

// Span returns the number of raw ticks covered by one unit of level i.
func (f *Frame) Span(i int) int64 {
	if i < 0 || i >= len(f.levels) {
		return 0
	}
	return f.levels[i].span
}

// CompressionVsRaw returns the ratio between registering rawUnits units of
// the finest granularity individually and the frame's slot capacity —
// Example 3's "saving of about 495 times" with rawUnits = 366·24·4.
func (f *Frame) CompressionVsRaw(rawUnits int64) float64 {
	return float64(rawUnits) / float64(f.SlotCapacity())
}
