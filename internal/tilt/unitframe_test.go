package tilt

import (
	"math"
	"testing"

	"repro/internal/regression"
	"repro/internal/timeseries"
)

func unitLevels() []Level {
	return []Level{
		{Name: "unit", Multiple: 1, Slots: 4},
		{Name: "four", Multiple: 4, Slots: 4},
		{Name: "sixteen", Multiple: 4, Slots: 2},
	}
}

func TestNewUnitFrameValidation(t *testing.T) {
	if _, err := NewUnitFrame(nil); err == nil {
		t.Fatal("expected empty-levels error")
	}
	if _, err := NewUnitFrame([]Level{{Name: "u", Multiple: 1, Slots: 0}}); err == nil {
		t.Fatal("expected slots error")
	}
	if _, err := NewUnitFrame([]Level{
		{Name: "u", Multiple: 1, Slots: 2},
		{Name: "v", Multiple: 0, Slots: 2},
	}); err == nil {
		t.Fatal("expected multiple error")
	}
	if _, err := NewUnitFrame([]Level{
		{Name: "u", Multiple: 1, Slots: 2},
		{Name: "v", Multiple: 3, Slots: 2},
	}); err == nil {
		t.Fatal("expected retention/promotion error")
	}
	// Level 0 Multiple is forced to 1 even when configured otherwise.
	f, err := NewUnitFrame([]Level{{Name: "u", Multiple: 99, Slots: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Push(regression.ISB{Tb: 0, Te: 4, Base: 1}); err != nil {
		t.Fatal(err)
	}
	if f.Completed(0) != 1 {
		t.Fatal("push must complete one level-0 unit")
	}
}

func TestUnitFramePushDiscipline(t *testing.T) {
	f, err := NewUnitFrame(unitLevels())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Push(regression.ISB{Tb: 0, Te: 9, Base: 1}); err != nil {
		t.Fatal(err)
	}
	// Wrong length.
	if err := f.Push(regression.ISB{Tb: 10, Te: 14, Base: 1}); err == nil {
		t.Fatal("expected tick-count mismatch")
	}
	// Gap.
	if err := f.Push(regression.ISB{Tb: 20, Te: 29, Base: 1}); err == nil {
		t.Fatal("expected adjacency error")
	}
	// Non-finite.
	if err := f.Push(regression.ISB{Tb: 10, Te: 19, Base: math.NaN()}); err == nil {
		t.Fatal("expected non-finite rejection")
	}
	// Inverted interval.
	if err := f.Push(regression.ISB{Tb: 19, Te: 10}); err == nil {
		t.Fatal("expected empty-interval rejection")
	}
	if err := f.Push(regression.ISB{Tb: 10, Te: 19, Base: 2}); err != nil {
		t.Fatal(err)
	}
	if f.Pushed() != 2 {
		t.Fatalf("pushed = %d", f.Pushed())
	}
}

// The central invariant: a UnitFrame fed per-unit fits equals a Frame fed
// the raw ticks, slot for slot, at every level.
func TestUnitFrameEquivalentToRawFrame(t *testing.T) {
	const ticksPerUnit, units = 5, 32
	raw := timeseries.NewSynth(9).Linear(0, ticksPerUnit*units, 3, 0.1, 0.7)

	frameLevels := []Level{
		{Name: "unit", Multiple: ticksPerUnit, Slots: 4},
		{Name: "four", Multiple: 4, Slots: 4},
		{Name: "sixteen", Multiple: 4, Slots: 2},
	}
	rawFrame := MustNew(frameLevels, 0)
	for i, z := range raw.Values {
		if err := rawFrame.Add(int64(i), z); err != nil {
			t.Fatal(err)
		}
	}

	uf, err := NewUnitFrame(unitLevels())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < units; u++ {
		sub, err := raw.Slice(int64(u*ticksPerUnit), int64((u+1)*ticksPerUnit-1))
		if err != nil {
			t.Fatal(err)
		}
		if err := uf.Push(regression.MustFit(sub)); err != nil {
			t.Fatal(err)
		}
	}

	for lvl := 0; lvl < 3; lvl++ {
		a, b := rawFrame.SlotsAt(lvl), uf.SlotsAt(lvl)
		if len(a) != len(b) {
			t.Fatalf("level %d slots: %d vs %d", lvl, len(a), len(b))
		}
		for i := range a {
			if a[i].Unit != b[i].Unit {
				t.Fatalf("level %d slot %d unit %d vs %d", lvl, i, a[i].Unit, b[i].Unit)
			}
			if !almostEq(a[i].ISB.Slope, b[i].ISB.Slope, 1e-9) || !almostEq(a[i].ISB.Base, b[i].ISB.Base, 1e-9) {
				t.Fatalf("level %d slot %d: %v vs %v", lvl, i, a[i].ISB, b[i].ISB)
			}
		}
		if rawFrame.Completed(lvl) != uf.Completed(lvl) {
			t.Fatalf("level %d completions differ", lvl)
		}
	}
	// Queries agree too.
	qa, err1 := rawFrame.Query(1, 2)
	qb, err2 := uf.Query(1, 2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !almostEq(qa.Slope, qb.Slope, 1e-9) {
		t.Fatalf("queries differ: %v vs %v", qa, qb)
	}
}

func TestUnitFrameQueryErrors(t *testing.T) {
	f, _ := NewUnitFrame(unitLevels())
	_ = f.Push(regression.ISB{Tb: 0, Te: 9, Base: 1})
	if _, err := f.Query(0, 2); err == nil {
		t.Fatal("expected too-few error")
	}
	if _, err := f.Query(9, 1); err == nil {
		t.Fatal("expected level error")
	}
	if _, err := f.Query(0, 0); err == nil {
		t.Fatal("expected k error")
	}
	if got, err := f.Query(0, 1); err != nil || got.Base != 1 {
		t.Fatalf("query = %v, %v", got, err)
	}
}

func TestUnitFrameAccessors(t *testing.T) {
	f, _ := NewUnitFrame(unitLevels())
	if f.Levels() != 3 {
		t.Fatal("levels")
	}
	if f.SlotCapacity() != 10 {
		t.Fatalf("capacity = %d", f.SlotCapacity())
	}
	for u := 0; u < 20; u++ {
		if err := f.Push(regression.ISB{Tb: int64(u * 10), Te: int64(u*10 + 9), Base: float64(u)}); err != nil {
			t.Fatal(err)
		}
	}
	if f.SlotsInUse() > f.SlotCapacity() {
		t.Fatal("retention exceeded")
	}
	if f.SlotsAt(-1) != nil || f.Completed(99) != 0 {
		t.Fatal("out-of-range accessors")
	}
}
