package tilt

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/regression"
)

// gappySeries is one randomly gapped stream: present[i] says whether tick
// start+i carries a reading, vals[i] is that reading.
type gappySeries struct {
	start   int64
	present []bool
	vals    []float64
}

func randomGappy(r *rand.Rand) gappySeries {
	n := 1 + r.Intn(300)
	g := gappySeries{
		start:   int64(r.Intn(100)) - 50,
		present: make([]bool, n),
		vals:    make([]float64, n),
	}
	for i := range g.present {
		g.present[i] = r.Float64() < 0.6
		g.vals[i] = r.NormFloat64() * 10
	}
	return g
}

// TestFrameAdvanceToMatchesZeroAdds is the frame-level mirror of the
// accumulator's AdvanceTo quick-check: feeding a gappy series through
// AdvanceTo gaps must leave every retained slot at every level — and the
// partial accumulator — bit-for-bit identical to feeding the same series
// with explicit Add(t, 0) calls on the missing ticks.
func TestFrameAdvanceToMatchesZeroAdds(t *testing.T) {
	levels := []Level{
		{Name: "u", Multiple: 4, Slots: 6},
		{Name: "v", Multiple: 3, Slots: 4},
		{Name: "w", Multiple: 2, Slots: 3},
	}
	r := rand.New(rand.NewSource(41))
	check := func() bool {
		g := randomGappy(r)
		bulk := MustNew(levels, g.start)
		loop := MustNew(levels, g.start)
		for i := range g.present {
			tick := g.start + int64(i)
			if g.present[i] {
				bulk.AdvanceTo(tick)
				if err := bulk.Add(tick, g.vals[i]); err != nil {
					t.Fatal(err)
				}
			}
			// The looped twin registers the gap ticks explicitly.
			if g.present[i] {
				if err := loop.Add(tick, g.vals[i]); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := loop.Add(tick, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Close the trailing gap so both frames consumed every tick.
		bulk.AdvanceTo(g.start + int64(len(g.present)))
		if bulk.Ticks() != loop.Ticks() {
			t.Fatalf("ticks %d vs %d", bulk.Ticks(), loop.Ticks())
		}
		for lv := 0; lv < bulk.Levels(); lv++ {
			if bulk.Completed(lv) != loop.Completed(lv) {
				t.Fatalf("level %d completed %d vs %d", lv, bulk.Completed(lv), loop.Completed(lv))
			}
			if !reflect.DeepEqual(bulk.SlotsAt(lv), loop.SlotsAt(lv)) {
				t.Fatalf("level %d slots differ:\n%v\nvs\n%v", lv, bulk.SlotsAt(lv), loop.SlotsAt(lv))
			}
		}
		bp, bok := bulk.Partial()
		lp, lok := loop.Partial()
		return bok == lok && bp == lp
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameGappyMatchesAccumulatorReplay is the property the stream
// engine's zero-usage convention rests on: a tilt frame over a gappy
// series must agree, slot for slot, with brute-force regression.
// Accumulator replays of the corresponding tick ranges with the gaps
// filled by zeros.
func TestFrameGappyMatchesAccumulatorReplay(t *testing.T) {
	levels := []Level{
		{Name: "u", Multiple: 5, Slots: 8},
		{Name: "v", Multiple: 2, Slots: 4},
	}
	r := rand.New(rand.NewSource(43))
	check := func() bool {
		g := randomGappy(r)
		f := MustNew(levels, g.start)
		// Dense replica of the gappy stream: zeros where absent.
		dense := make([]float64, len(g.vals))
		for i := range g.vals {
			if g.present[i] {
				dense[i] = g.vals[i]
				f.AdvanceTo(g.start + int64(i))
				if err := f.Add(g.start+int64(i), g.vals[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		f.AdvanceTo(g.start + int64(len(dense)))

		for lv := 0; lv < f.Levels(); lv++ {
			span := f.Span(lv)
			for _, slot := range f.SlotsAt(lv) {
				lo := g.start + slot.Unit*span
				acc := regression.NewAccumulator(lo)
				for tick := lo; tick < lo+span; tick++ {
					if err := acc.Add(tick, dense[tick-g.start]); err != nil {
						t.Fatal(err)
					}
				}
				want, err := acc.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if slot.ISB.Tb != want.Tb || slot.ISB.Te != want.Te {
					t.Fatalf("level %d unit %d: interval %v, replay %v", lv, slot.Unit, slot.ISB, want)
				}
				// The finest level accumulates exactly like the replay;
				// promoted levels go through Theorem 3.3, which is lossless
				// up to float re-association.
				if lv == 0 {
					if slot.ISB != want {
						t.Fatalf("level 0 unit %d: frame %v, replay %v (want bitwise)", slot.Unit, slot.ISB, want)
					}
				} else if !almostEq(slot.ISB.Slope, want.Slope, 1e-7) || !almostEq(slot.ISB.Base, want.Base, 1e-7) {
					t.Fatalf("level %d unit %d: frame %v, replay %v", lv, slot.Unit, slot.ISB, want)
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameAdvanceToNoOp(t *testing.T) {
	f := MustNew([]Level{{Name: "u", Multiple: 3, Slots: 4}}, 10)
	if err := f.Add(10, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(11, 2); err != nil {
		t.Fatal(err)
	}
	f.AdvanceTo(12) // == NextTick
	f.AdvanceTo(5)  // before start
	if f.Ticks() != 2 || f.NextTick() != 12 {
		t.Fatalf("no-op AdvanceTo moved the frame: ticks=%d next=%d", f.Ticks(), f.NextTick())
	}
}

// TestUnitFrameStateRoundTrip drives a frame across promotions and
// evictions, snapshots its state, and asserts the restored frame is
// deeply identical and accepts the exact next unit.
func TestUnitFrameStateRoundTrip(t *testing.T) {
	levels := []Level{
		{Name: "q", Multiple: 1, Slots: 4},
		{Name: "h", Multiple: 4, Slots: 3},
		{Name: "d", Multiple: 2, Slots: 2},
	}
	f, err := NewUnitFrame(levels)
	if err != nil {
		t.Fatal(err)
	}
	unit := func(u int64) regression.ISB {
		return regression.ISB{Tb: u * 10, Te: u*10 + 9, Base: float64(u), Slope: float64(u) / 7}
	}
	for u := int64(0); u < 23; u++ {
		if err := f.Push(unit(u)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.State()
	g, err := RestoreUnitFrame(levels, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("restored frame differs:\n%+v\nvs\n%+v", f, g)
	}
	if err := g.Push(unit(23)); err != nil {
		t.Fatalf("restored frame rejects the next unit: %v", err)
	}
	for lv := 0; lv < f.Levels(); lv++ {
		if !reflect.DeepEqual(f.SlotsAt(lv), st.Levels[lv].Slots) {
			t.Fatalf("state level %d does not mirror the frame", lv)
		}
	}
}

// TestRestoreUnitFrameRejectsCorruption feeds structurally broken states
// through every validation clause.
func TestRestoreUnitFrameRejectsCorruption(t *testing.T) {
	levels := []Level{
		{Name: "q", Multiple: 1, Slots: 4},
		{Name: "h", Multiple: 2, Slots: 3},
	}
	f, err := NewUnitFrame(levels)
	if err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < 9; u++ {
		if err := f.Push(regression.ISB{Tb: u * 5, Te: u*5 + 4, Base: 1}); err != nil {
			t.Fatal(err)
		}
	}
	good := f.State()
	corrupt := []struct {
		name string
		mut  func(st *UnitFrameState)
	}{
		{"level count", func(st *UnitFrameState) { st.Levels = st.Levels[:1] }},
		{"negative pushed", func(st *UnitFrameState) { st.Pushed = -1 }},
		{"pushed vs finest completions", func(st *UnitFrameState) { st.Pushed += 2 }},
		{"coarse completion arithmetic", func(st *UnitFrameState) { st.Levels[1].Next++ }},
		{"over-retained slots", func(st *UnitFrameState) {
			st.Levels[0].Slots = append(st.Levels[0].Slots, st.Levels[0].Slots...)
		}},
		{"slot ordinal gap", func(st *UnitFrameState) { st.Levels[0].Slots[0].Unit-- }},
		{"non-finite measure", func(st *UnitFrameState) {
			st.Levels[0].Slots[1].ISB.Slope = math.Inf(1)
		}},
		{"wrong slot span", func(st *UnitFrameState) { st.Levels[0].Slots[1].ISB.Te++ }},
		{"next unit misaligned", func(st *UnitFrameState) { st.NextTb += 3 }},
	}
	for _, tc := range corrupt {
		st := deepCopyState(good)
		tc.mut(&st)
		if _, err := RestoreUnitFrame(levels, st); err == nil {
			t.Fatalf("%s: corrupt state restored silently", tc.name)
		} else if !strings.Contains(err.Error(), "restore") {
			t.Fatalf("%s: error %v lacks restore context", tc.name, err)
		}
	}
	// The untouched state still restores.
	if _, err := RestoreUnitFrame(levels, deepCopyState(good)); err != nil {
		t.Fatal(err)
	}
}

func deepCopyState(st UnitFrameState) UnitFrameState {
	out := st
	out.Levels = make([]LevelStateRec, len(st.Levels))
	for i, lv := range st.Levels {
		out.Levels[i] = LevelStateRec{Next: lv.Next, Slots: append([]Slot(nil), lv.Slots...)}
	}
	return out
}
