package tilt

import (
	"fmt"

	"repro/internal/regression"
)

// UnitFrame is a tilt frame fed with already-fitted unit ISBs instead of
// raw ticks — the natural register for an o-layer cell in the online
// engine (§4.5): each completed unit's cube computation yields one ISB per
// o-cell, and the frame promotes them to coarser granularities exactly
// like Frame does for raw streams.
//
// Level 0's Multiple is interpreted as 1 (each pushed ISB is one level-0
// unit); higher levels behave as in Frame.
type UnitFrame struct {
	levels    []levelState
	unitTicks int64 // ticks per pushed unit, fixed by the first push
	nextTb    int64 // required Tb of the next pushed unit
	pushed    int64
}

// NewUnitFrame validates the level chain. The finest level's Multiple is
// forced to 1; retention/promotion constraints match Frame's.
func NewUnitFrame(levels []Level) (*UnitFrame, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrConfig)
	}
	f := &UnitFrame{}
	span := int64(1)
	for i, lv := range levels {
		if i == 0 {
			lv.Multiple = 1
		}
		if lv.Multiple < 1 {
			return nil, fmt.Errorf("%w: level %q multiple %d", ErrConfig, lv.Name, lv.Multiple)
		}
		if lv.Slots < 1 {
			return nil, fmt.Errorf("%w: level %q slots %d", ErrConfig, lv.Name, lv.Slots)
		}
		if i+1 < len(levels) && lv.Slots < levels[i+1].Multiple {
			return nil, fmt.Errorf("%w: level %q retains %d slots but level %q needs %d children",
				ErrConfig, lv.Name, lv.Slots, levels[i+1].Name, levels[i+1].Multiple)
		}
		span *= int64(lv.Multiple)
		f.levels = append(f.levels, levelState{cfg: lv, span: span})
	}
	return f, nil
}

// Push registers the next completed unit's ISB. All units must have equal
// tick counts and be adjacent in time.
func (f *UnitFrame) Push(isb regression.ISB) error {
	n := isb.N()
	if n < 1 {
		return fmt.Errorf("%w: empty unit interval", ErrConfig)
	}
	if !isb.IsFinite() {
		return fmt.Errorf("%w: non-finite unit measure", ErrConfig)
	}
	if f.pushed == 0 {
		f.unitTicks = n
		f.nextTb = isb.Tb
	}
	if n != f.unitTicks {
		return fmt.Errorf("%w: unit has %d ticks, frame expects %d", ErrConfig, n, f.unitTicks)
	}
	if isb.Tb != f.nextTb {
		return fmt.Errorf("%w: unit starts at %d, frame expects %d", ErrConfig, isb.Tb, f.nextTb)
	}
	f.completeUnit(0, isb)
	f.nextTb = isb.Te + 1
	f.pushed++
	return nil
}

// completeUnit mirrors Frame.completeUnit for pushed units.
func (f *UnitFrame) completeUnit(i int, isb regression.ISB) {
	ls := &f.levels[i]
	ls.slots = append(ls.slots, Slot{Unit: ls.next, ISB: isb})
	ls.next++
	if i+1 < len(f.levels) {
		mult := int64(f.levels[i+1].cfg.Multiple)
		if ls.next%mult == 0 {
			children := ls.slots[len(ls.slots)-int(mult):]
			isbs := make([]regression.ISB, len(children))
			for j, s := range children {
				isbs[j] = s.ISB
			}
			parent, err := regression.AggregateTime(isbs...)
			if err != nil {
				panic(fmt.Sprintf("tilt: unit-frame promotion failed: %v", err))
			}
			f.completeUnit(i+1, parent)
		}
	}
	if over := len(ls.slots) - ls.cfg.Slots; over > 0 {
		ls.slots = append(ls.slots[:0], ls.slots[over:]...)
	}
}

// Levels returns the number of granularity levels.
func (f *UnitFrame) Levels() int { return len(f.levels) }

// Pushed returns how many unit ISBs have been registered.
func (f *UnitFrame) Pushed() int64 { return f.pushed }

// SlotsAt returns the retained completed units at level i, oldest first.
func (f *UnitFrame) SlotsAt(i int) []Slot {
	if i < 0 || i >= len(f.levels) {
		return nil
	}
	out := make([]Slot, len(f.levels[i].slots))
	copy(out, f.levels[i].slots)
	return out
}

// Completed returns how many units have ever completed at level i.
func (f *UnitFrame) Completed(i int) int64 {
	if i < 0 || i >= len(f.levels) {
		return 0
	}
	return f.levels[i].next
}

// Query aggregates the last k completed units at level i (Theorem 3.3).
func (f *UnitFrame) Query(i, k int) (regression.ISB, error) {
	if i < 0 || i >= len(f.levels) {
		return regression.ISB{}, fmt.Errorf("%w: level %d of %d", ErrQuery, i, len(f.levels))
	}
	ls := &f.levels[i]
	if k <= 0 || k > len(ls.slots) {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested at level %q, %d retained",
			ErrQuery, k, ls.cfg.Name, len(ls.slots))
	}
	tail := ls.slots[len(ls.slots)-k:]
	isbs := make([]regression.ISB, k)
	for j, s := range tail {
		isbs[j] = s.ISB
	}
	return regression.AggregateTime(isbs...)
}

// SlotCapacity returns the total retention across levels.
func (f *UnitFrame) SlotCapacity() int {
	var total int
	for i := range f.levels {
		total += f.levels[i].cfg.Slots
	}
	return total
}

// SlotsInUse returns the retained completed units across levels.
func (f *UnitFrame) SlotsInUse() int {
	var total int
	for i := range f.levels {
		total += len(f.levels[i].slots)
	}
	return total
}
