package tilt

import (
	"fmt"

	"repro/internal/regression"
)

// UnitFrame is a tilt frame fed with already-fitted unit ISBs instead of
// raw ticks — the natural register for an o-layer cell in the online
// engine (§4.5): each completed unit's cube computation yields one ISB per
// o-cell, and the frame promotes them to coarser granularities exactly
// like Frame does for raw streams.
//
// Level 0's Multiple is interpreted as 1 (each pushed ISB is one level-0
// unit); higher levels behave as in Frame.
type UnitFrame struct {
	levels    []levelState
	unitTicks int64 // ticks per pushed unit, fixed by the first push
	nextTb    int64 // required Tb of the next pushed unit
	pushed    int64
}

// NewUnitFrame validates the level chain. The finest level's Multiple is
// forced to 1; retention/promotion constraints match Frame's.
func NewUnitFrame(levels []Level) (*UnitFrame, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("%w: no levels", ErrConfig)
	}
	f := &UnitFrame{}
	span := int64(1)
	for i, lv := range levels {
		if i == 0 {
			lv.Multiple = 1
		}
		if lv.Multiple < 1 {
			return nil, fmt.Errorf("%w: level %q multiple %d", ErrConfig, lv.Name, lv.Multiple)
		}
		if lv.Slots < 1 {
			return nil, fmt.Errorf("%w: level %q slots %d", ErrConfig, lv.Name, lv.Slots)
		}
		if i+1 < len(levels) && lv.Slots < levels[i+1].Multiple {
			return nil, fmt.Errorf("%w: level %q retains %d slots but level %q needs %d children",
				ErrConfig, lv.Name, lv.Slots, levels[i+1].Name, levels[i+1].Multiple)
		}
		span *= int64(lv.Multiple)
		f.levels = append(f.levels, levelState{cfg: lv, span: span})
	}
	return f, nil
}

// Push registers the next completed unit's ISB. All units must have equal
// tick counts and be adjacent in time.
func (f *UnitFrame) Push(isb regression.ISB) error {
	n := isb.N()
	if n < 1 {
		return fmt.Errorf("%w: empty unit interval", ErrConfig)
	}
	if !isb.IsFinite() {
		return fmt.Errorf("%w: non-finite unit measure", ErrConfig)
	}
	if f.pushed == 0 {
		f.unitTicks = n
		f.nextTb = isb.Tb
	}
	if n != f.unitTicks {
		return fmt.Errorf("%w: unit has %d ticks, frame expects %d", ErrConfig, n, f.unitTicks)
	}
	if isb.Tb != f.nextTb {
		return fmt.Errorf("%w: unit starts at %d, frame expects %d", ErrConfig, isb.Tb, f.nextTb)
	}
	f.completeUnit(0, isb)
	f.nextTb = isb.Te + 1
	f.pushed++
	return nil
}

// completeUnit mirrors Frame.completeUnit for pushed units.
func (f *UnitFrame) completeUnit(i int, isb regression.ISB) {
	ls := &f.levels[i]
	ls.slots = append(ls.slots, Slot{Unit: ls.next, ISB: isb})
	ls.next++
	if i+1 < len(f.levels) {
		mult := int64(f.levels[i+1].cfg.Multiple)
		if ls.next%mult == 0 {
			children := ls.slots[len(ls.slots)-int(mult):]
			isbs := make([]regression.ISB, len(children))
			for j, s := range children {
				isbs[j] = s.ISB
			}
			parent, err := regression.AggregateTime(isbs...)
			if err != nil {
				panic(fmt.Sprintf("tilt: unit-frame promotion failed: %v", err))
			}
			f.completeUnit(i+1, parent)
		}
	}
	if over := len(ls.slots) - ls.cfg.Slots; over > 0 {
		ls.slots = append(ls.slots[:0], ls.slots[over:]...)
	}
}

// Levels returns the number of granularity levels.
func (f *UnitFrame) Levels() int { return len(f.levels) }

// LevelName returns the configured name of level i.
func (f *UnitFrame) LevelName(i int) string { return f.levels[i].cfg.Name }

// Pushed returns how many unit ISBs have been registered.
func (f *UnitFrame) Pushed() int64 { return f.pushed }

// SlotsLen returns how many completed units level i currently retains,
// without copying them.
func (f *UnitFrame) SlotsLen(i int) int {
	if i < 0 || i >= len(f.levels) {
		return 0
	}
	return len(f.levels[i].slots)
}

// LastSlot returns the most recent retained completed unit at level i.
func (f *UnitFrame) LastSlot(i int) (Slot, bool) {
	if i < 0 || i >= len(f.levels) || len(f.levels[i].slots) == 0 {
		return Slot{}, false
	}
	slots := f.levels[i].slots
	return slots[len(slots)-1], true
}

// SlotsAt returns the retained completed units at level i, oldest first.
func (f *UnitFrame) SlotsAt(i int) []Slot {
	if i < 0 || i >= len(f.levels) {
		return nil
	}
	out := make([]Slot, len(f.levels[i].slots))
	copy(out, f.levels[i].slots)
	return out
}

// Completed returns how many units have ever completed at level i.
func (f *UnitFrame) Completed(i int) int64 {
	if i < 0 || i >= len(f.levels) {
		return 0
	}
	return f.levels[i].next
}

// Query aggregates the last k completed units at level i (Theorem 3.3).
func (f *UnitFrame) Query(i, k int) (regression.ISB, error) {
	if i < 0 || i >= len(f.levels) {
		return regression.ISB{}, fmt.Errorf("%w: level %d of %d", ErrQuery, i, len(f.levels))
	}
	ls := &f.levels[i]
	if k <= 0 || k > len(ls.slots) {
		return regression.ISB{}, fmt.Errorf("%w: %d units requested at level %q, %d retained",
			ErrQuery, k, ls.cfg.Name, len(ls.slots))
	}
	tail := ls.slots[len(ls.slots)-k:]
	isbs := make([]regression.ISB, k)
	for j, s := range tail {
		isbs[j] = s.ISB
	}
	return regression.AggregateTime(isbs...)
}

// SlotCapacity returns the total retention across levels.
func (f *UnitFrame) SlotCapacity() int {
	var total int
	for i := range f.levels {
		total += f.levels[i].cfg.Slots
	}
	return total
}

// SlotsInUse returns the retained completed units across levels.
func (f *UnitFrame) SlotsInUse() int {
	var total int
	for i := range f.levels {
		total += len(f.levels[i].slots)
	}
	return total
}

// UnitFrameState is the serializable state of a UnitFrame — what a stream
// checkpoint stores per o-cell so tilted multi-granularity history
// survives restarts. State/RestoreUnitFrame round-trip exactly; the
// restore path validates level structure, slot ordering, and interval
// adjacency so a corrupt file cannot poison later promotions.
type UnitFrameState struct {
	UnitTicks int64           `json:"unitTicks"`
	NextTb    int64           `json:"nextTb"`
	Pushed    int64           `json:"pushed"`
	Levels    []LevelStateRec `json:"levels"`
}

// LevelStateRec is one level's retained slots and completion counter.
type LevelStateRec struct {
	Next  int64  `json:"next"`
	Slots []Slot `json:"slots"`
}

// State exports the frame's dynamic state for checkpointing.
func (f *UnitFrame) State() UnitFrameState {
	st := UnitFrameState{UnitTicks: f.unitTicks, NextTb: f.nextTb, Pushed: f.pushed}
	st.Levels = make([]LevelStateRec, len(f.levels))
	for i := range f.levels {
		ls := &f.levels[i]
		st.Levels[i] = LevelStateRec{Next: ls.next, Slots: append([]Slot(nil), ls.slots...)}
	}
	return st
}

// RestoreUnitFrame rebuilds a frame from a checkpointed state against the
// same level chain it was configured with.
func RestoreUnitFrame(levels []Level, st UnitFrameState) (*UnitFrame, error) {
	f, err := NewUnitFrame(levels)
	if err != nil {
		return nil, err
	}
	if len(st.Levels) != len(f.levels) {
		return nil, fmt.Errorf("%w: restore: state has %d levels, frame %d",
			ErrConfig, len(st.Levels), len(f.levels))
	}
	if st.Pushed < 0 || (st.Pushed > 0 && st.UnitTicks < 1) {
		return nil, fmt.Errorf("%w: restore: pushed %d units of %d ticks", ErrConfig, st.Pushed, st.UnitTicks)
	}
	if len(st.Levels) > 0 && st.Levels[0].Next != st.Pushed {
		return nil, fmt.Errorf("%w: restore: %d pushed units but %d finest completions",
			ErrConfig, st.Pushed, st.Levels[0].Next)
	}
	span := int64(1)
	for i := range f.levels {
		ls := &f.levels[i]
		rec := st.Levels[i]
		if i > 0 {
			span *= int64(ls.cfg.Multiple)
			if want := st.Levels[i-1].Next / int64(ls.cfg.Multiple); rec.Next != want {
				return nil, fmt.Errorf("%w: restore: level %q completed %d units, want %d",
					ErrConfig, ls.cfg.Name, rec.Next, want)
			}
		}
		if rec.Next < int64(len(rec.Slots)) || len(rec.Slots) > ls.cfg.Slots {
			return nil, fmt.Errorf("%w: restore: level %q retains %d slots of %d completed (cap %d)",
				ErrConfig, ls.cfg.Name, len(rec.Slots), rec.Next, ls.cfg.Slots)
		}
		for j, s := range rec.Slots {
			if want := rec.Next - int64(len(rec.Slots)) + int64(j); s.Unit != want {
				return nil, fmt.Errorf("%w: restore: level %q slot %d is unit %d, want %d",
					ErrConfig, ls.cfg.Name, j, s.Unit, want)
			}
			if !s.ISB.IsFinite() {
				return nil, fmt.Errorf("%w: restore: level %q unit %d has non-finite measure",
					ErrConfig, ls.cfg.Name, s.Unit)
			}
			if n := s.ISB.N(); n != span*st.UnitTicks {
				return nil, fmt.Errorf("%w: restore: level %q unit %d spans %d ticks, want %d",
					ErrConfig, ls.cfg.Name, s.Unit, n, span*st.UnitTicks)
			}
			if j > 0 && s.ISB.Tb != rec.Slots[j-1].ISB.Te+1 {
				return nil, fmt.Errorf("%w: restore: level %q units %d and %d are not adjacent",
					ErrConfig, ls.cfg.Name, rec.Slots[j-1].Unit, s.Unit)
			}
		}
		ls.slots = append([]Slot(nil), rec.Slots...)
		ls.next = rec.Next
	}
	if n := len(st.Levels[0].Slots); n > 0 {
		if last := st.Levels[0].Slots[n-1]; last.ISB.Te+1 != st.NextTb {
			return nil, fmt.Errorf("%w: restore: next unit starts at %d, last finest unit ends at %d",
				ErrConfig, st.NextTb, last.ISB.Te)
		}
	}
	f.unitTicks = st.UnitTicks
	f.nextTb = st.NextTb
	f.pushed = st.Pushed
	return f, nil
}
