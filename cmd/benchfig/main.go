// Command benchfig regenerates the paper's evaluation artifacts (Figures
// 8, 9, 10 and the Example 3 tilt-frame table) as text tables.
//
// Usage:
//
//	benchfig -exp all                 # everything at paper scale
//	benchfig -exp fig8 -scale 0.1     # a 10%-size quick run
//	benchfig -exp tilt
//
// Columns report both algorithms' processing time (build + cube),
// peak-memory estimate, computed cells, and retained exception cells.
// Absolute values differ from the paper's 2002 testbed; the reproduced
// claim is the curve shape (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/gen"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8 | fig9 | fig10 | tilt | all")
	seed := flag.Int64("seed", 2002, "generator seed")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "benchfig: -scale must be in (0,1]")
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("# %s completed in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("tilt", func() error { return runTilt() })
	run("fig8", func() error { return runFig8(*seed, *scale) })
	run("fig9", func() error { return runFig9(*seed, *scale) })
	run("fig10", func() error { return runFig10(*seed, *scale) })

	switch *exp {
	case "all", "fig8", "fig9", "fig10", "tilt":
	default:
		fmt.Fprintf(os.Stderr, "benchfig: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func mb(b int64) float64         { return float64(b) / (1 << 20) }

func runTilt() error {
	fmt.Println("== Example 3: tilt time frame compression ==")
	fmt.Printf("%-50s %8s %10s %8s\n", "frame", "slots", "raw-units", "ratio")
	for _, r := range bench.TiltTable() {
		fmt.Printf("%-50s %8d %10d %7.1fx\n", r.Description, r.Slots, r.RawUnits, r.Ratio)
	}
	fmt.Println()
	return nil
}

func runFig8(seed int64, scale float64) error {
	tuples := int(100000 * scale)
	if tuples < 100 {
		tuples = 100
	}
	spec := gen.Spec{Dims: 3, Levels: 3, Fanout: 10, Tuples: tuples}
	fmt.Printf("== Figure 8: time & space vs exception %% (dataset %s) ==\n", spec)
	rates := []float64{0.1, 0.3, 1, 3, 10, 30, 100}
	rows, err := bench.Fig8(spec, seed, rates)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s | %12s %12s | %10s %10s | %12s %12s | %9s %9s\n",
		"exc(%)", "threshold", "mo-time(ms)", "pp-time(ms)", "mo-mem(MB)", "pp-mem(MB)",
		"mo-cells", "pp-cells", "mo-exc", "pp-exc")
	for _, r := range rows {
		fmt.Printf("%8.1f %12.4f | %12.1f %12.1f | %10.1f %10.1f | %12d %12d | %9d %9d\n",
			r.RatePct, r.Threshold, ms(r.MO.Time), ms(r.PP.Time),
			mb(r.MO.PeakBytes), mb(r.PP.PeakBytes), r.MO.Cells, r.PP.Cells, r.MO.Exc, r.PP.Exc)
	}
	fmt.Println()
	return nil
}

func runFig9(seed int64, scale float64) error {
	max := int(256000 * scale)
	if max < 800 {
		max = 800
	}
	spec := gen.Spec{Dims: 3, Levels: 3, Fanout: 10, Tuples: max}
	sizes := []int{max / 8, max / 4, max / 2, max}
	fmt.Printf("== Figure 9: time & space vs m-layer size (D3L3C10, 1%% exceptions, subsets of %s) ==\n", spec)
	rows, err := bench.Fig9(spec, seed, sizes, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s | %12s %12s | %10s %10s | %12s %12s\n",
		"tuples", "threshold", "mo-time(ms)", "pp-time(ms)", "mo-mem(MB)", "pp-mem(MB)", "mo-cells", "pp-cells")
	for _, r := range rows {
		fmt.Printf("%10d %12.4f | %12.1f %12.1f | %10.1f %10.1f | %12d %12d\n",
			r.Tuples, r.Threshold, ms(r.MO.Time), ms(r.PP.Time),
			mb(r.MO.PeakBytes), mb(r.PP.PeakBytes), r.MO.Cells, r.PP.Cells)
	}
	fmt.Println()
	return nil
}

func runFig10(seed int64, scale float64) error {
	tuples := int(10000 * scale)
	if tuples < 100 {
		tuples = 100
	}
	fmt.Printf("== Figure 10: time & space vs #levels (D2C10T%d, 1%% exceptions) ==\n", tuples)
	rows, err := bench.Fig10(2, 10, tuples, []int{3, 4, 5, 6, 7}, seed, 1)
	if err != nil {
		return err
	}
	fmt.Printf("%7s %8s %12s | %12s %12s | %10s %10s | %12s %12s\n",
		"levels", "cuboids", "threshold", "mo-time(ms)", "pp-time(ms)", "mo-mem(MB)", "pp-mem(MB)", "mo-cells", "pp-cells")
	for _, r := range rows {
		fmt.Printf("%7d %8d %12.4f | %12.1f %12.1f | %10.1f %10.1f | %12d %12d\n",
			r.Levels, r.Cuboids, r.Threshold, ms(r.MO.Time), ms(r.PP.Time),
			mb(r.MO.PeakBytes), mb(r.PP.PeakBytes), r.MO.Cells, r.PP.Cells)
	}
	fmt.Println()
	return nil
}
