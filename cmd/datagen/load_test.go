package main

import (
	"testing"
	"time"
)

// ascending returns the sorted sample 1ms, 2ms, ..., n·ms, whose
// nearest-rank percentile has the closed form ⌈p·n⌉ ms.
func ascending(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = time.Duration(i+1) * time.Millisecond
	}
	return out
}

// TestPercentileNearestRank pins the clamped nearest-rank definition at
// the small sample sizes where the old p·(n−1) indexing mis-picked:
// p99 and max must coincide for every n < 100.
func TestPercentileNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		want time.Duration
	}{
		{1, 0, 1 * time.Millisecond},
		{1, 0.50, 1 * time.Millisecond},
		{1, 0.99, 1 * time.Millisecond},
		{1, 1, 1 * time.Millisecond},
		{2, 0.50, 1 * time.Millisecond},
		{2, 0.95, 2 * time.Millisecond},
		{2, 0.99, 2 * time.Millisecond},
		{10, 0.50, 5 * time.Millisecond},
		{10, 0.95, 10 * time.Millisecond},
		{10, 0.99, 10 * time.Millisecond}, // old indexing picked 9ms here
		{10, 1, 10 * time.Millisecond},
		{100, 0.50, 50 * time.Millisecond},
		{100, 0.95, 95 * time.Millisecond},
		{100, 0.99, 99 * time.Millisecond},
		{100, 1, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(ascending(tc.n), tc.p); got != tc.want {
			t.Errorf("percentile(n=%d, p=%g) = %s, want %s", tc.n, tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %s, want 0", got)
	}
}

// TestPercentileTailNeverBelowMax asserts the p99/max collapse is gone:
// for every sample size the p100 equals the maximum and p99 is within one
// rank of it.
func TestPercentileTailNeverBelowMax(t *testing.T) {
	for n := 1; n <= 128; n++ {
		s := ascending(n)
		max := s[n-1]
		if got := percentile(s, 1); got != max {
			t.Fatalf("n=%d: p100 = %s, want max %s", n, got, max)
		}
		p99 := percentile(s, 0.99)
		if p99 > max || max-p99 > time.Millisecond {
			t.Fatalf("n=%d: p99 = %s strays from max %s", n, p99, max)
		}
	}
}
