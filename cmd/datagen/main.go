// Command datagen emits a synthetic D/L/C/T workload (paper §5) as CSV on
// stdout: one row per m-layer tuple with its dimension members and ISB
// regression measure.
//
// With -stream it instead emits raw stream records in streamd's input
// format — tick,dim0,...,dimN,value — one reading per distinct m-cell per
// tick in global tick order, synthesized from each cell's regression line
// plus noise. `datagen -stream | streamd` is then a complete online
// pipeline.
//
// Usage:
//
//	datagen -spec D3L3C10T100K -seed 7 > dataset.csv
//	datagen -spec D2L4C5T10K -raw                  # fit measures from raw series
//	datagen -spec D2L2C4T2K -stream -ticks 60 | streamd -spec D2L2C4 -unit 15
//
// Columns: dim0,...,dimN,tb,te,base,slope (batch) or
// tick,dim0,...,dimN,value (-stream).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/gen"
	"repro/internal/regression"
	"repro/internal/timeseries"
)

func main() {
	specStr := flag.String("spec", "D3L3C10T100K", "dataset spec (D/L/C/T convention)")
	seed := flag.Int64("seed", 2002, "generator seed")
	raw := flag.Bool("raw", false, "fit measures from synthetic raw series (slower)")
	stream := flag.Bool("stream", false, "emit raw stream records (tick,dims...,value) for streamd")
	ticks := flag.Int("ticks", 10, "regression interval length per tuple")
	flag.Parse()

	spec, err := gen.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}
	cfg := gen.Config{Spec: spec, Seed: *seed, Ticks: *ticks}
	var ds *gen.Dataset
	if *raw {
		ds, err = gen.GenerateRaw(cfg)
	} else {
		ds, err = gen.Generate(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *stream {
		if err := writeStream(w, ds, *ticks, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	// Header.
	for d := 0; d < spec.Dims; d++ {
		fmt.Fprintf(w, "dim%d,", d)
	}
	fmt.Fprintln(w, "tb,te,base,slope")
	for _, in := range ds.Inputs {
		for _, m := range in.Members {
			w.WriteString(strconv.FormatInt(int64(m), 10))
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%d,%d,%g,%g\n", in.Measure.Tb, in.Measure.Te, in.Measure.Base, in.Measure.Slope)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d tuples of %s (seed %d)\n", len(ds.Inputs), spec, *seed)
}

// writeStream renders the dataset as raw records for the online engine:
// tuples sharing an m-cell merge (the engine allows one reading per cell
// per tick), each cell synthesizes a noisy series around its regression
// line, and rows stream out in global tick order.
func writeStream(w *bufio.Writer, ds *gen.Dataset, ticks int, seed int64) error {
	type cell struct {
		members []int32
		isb     regression.ISB
	}
	var cells []*cell
	index := make(map[string]*cell, len(ds.Inputs))
	var keyBuf []byte
	for _, in := range ds.Inputs {
		keyBuf = keyBuf[:0]
		for _, m := range in.Members {
			keyBuf = strconv.AppendInt(keyBuf, int64(m), 10)
			keyBuf = append(keyBuf, ',')
		}
		c, ok := index[string(keyBuf)]
		if !ok {
			c = &cell{members: in.Members, isb: in.Measure}
			index[string(keyBuf)] = c
			cells = append(cells, c)
			continue
		}
		merged, err := regression.AggregateStandard(c.isb, in.Measure)
		if err != nil {
			return err
		}
		c.isb = merged
	}
	g := timeseries.NewSynth(seed + 2)
	series := make([]*timeseries.Series, len(cells))
	for i, c := range cells {
		series[i] = g.Linear(0, ticks, c.isb.Base, c.isb.Slope, 0.5)
	}
	var rows int64
	for t := 0; t < ticks; t++ {
		for i, c := range cells {
			w.WriteString(strconv.FormatInt(int64(t), 10))
			for _, m := range c.members {
				w.WriteByte(',')
				w.WriteString(strconv.FormatInt(int64(m), 10))
			}
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(series[i].Values[t], 'g', -1, 64))
			w.WriteByte('\n')
			rows++
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d stream records over %d ticks, %d cells (seed %d)\n",
		rows, ticks, len(cells), seed)
	return nil
}
