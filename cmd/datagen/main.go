// Command datagen emits a synthetic D/L/C/T workload (paper §5) as CSV on
// stdout: one row per m-layer tuple with its dimension members and ISB
// regression measure.
//
// Usage:
//
//	datagen -spec D3L3C10T100K -seed 7 > dataset.csv
//	datagen -spec D2L4C5T10K -raw        # fit measures from raw series
//
// Columns: dim0,...,dimN,tb,te,base,slope
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/gen"
)

func main() {
	specStr := flag.String("spec", "D3L3C10T100K", "dataset spec (D/L/C/T convention)")
	seed := flag.Int64("seed", 2002, "generator seed")
	raw := flag.Bool("raw", false, "fit measures from synthetic raw series (slower)")
	ticks := flag.Int("ticks", 10, "regression interval length per tuple")
	flag.Parse()

	spec, err := gen.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}
	cfg := gen.Config{Spec: spec, Seed: *seed, Ticks: *ticks}
	var ds *gen.Dataset
	if *raw {
		ds, err = gen.GenerateRaw(cfg)
	} else {
		ds, err = gen.Generate(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	// Header.
	for d := 0; d < spec.Dims; d++ {
		fmt.Fprintf(w, "dim%d,", d)
	}
	fmt.Fprintln(w, "tb,te,base,slope")
	for _, in := range ds.Inputs {
		for _, m := range in.Members {
			w.WriteString(strconv.FormatInt(int64(m), 10))
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%d,%d,%g,%g\n", in.Measure.Tb, in.Measure.Te, in.Measure.Base, in.Measure.Slope)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d tuples of %s (seed %d)\n", len(ds.Inputs), spec, *seed)
}
