// Command datagen emits a synthetic D/L/C/T workload (paper §5) as CSV on
// stdout: one row per m-layer tuple with its dimension members and ISB
// regression measure.
//
// With -stream it instead emits raw stream records in streamd's input
// format — tick,dim0,...,dimN,value — one reading per distinct m-cell per
// tick in global tick order, synthesized from each cell's regression line
// plus noise. `datagen -stream | streamd` is then a complete online
// pipeline. -pace slows emission to one tick per interval, turning the
// batch generator into a live stream source. -format binary switches the
// record encoding to the framed columnar wire format (internal/wire),
// which streamd auto-detects on the same stdin; the records are
// identical, only the envelope changes.
//
// With -query URL (alongside -stream) datagen doubles as a load
// generator: while records stream to stdout, worker goroutines hammer the
// target streamd's HTTP query API and report latency percentiles on
// stderr when the stream ends — mixed ingest+query traffic from one
// process:
//
//	datagen -spec D2L2C4T2K -stream -ticks 600 -pace 10ms \
//	        -query http://127.0.0.1:8080 | streamd -spec D2L2C4 -listen :8080
//
// Usage:
//
//	datagen -spec D3L3C10T100K -seed 7 > dataset.csv
//	datagen -spec D2L4C5T10K -raw                  # fit measures from raw series
//	datagen -spec D2L2C4T2K -stream -ticks 60 | streamd -spec D2L2C4 -unit 15
//
// Columns: dim0,...,dimN,tb,te,base,slope (batch) or
// tick,dim0,...,dimN,value (-stream).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/gen"
	"repro/internal/regression"
	"repro/internal/timeseries"
	"repro/internal/wire"
)

func main() {
	specStr := flag.String("spec", "D3L3C10T100K", "dataset spec (D/L/C/T convention)")
	seed := flag.Int64("seed", 2002, "generator seed")
	raw := flag.Bool("raw", false, "fit measures from synthetic raw series (slower)")
	stream := flag.Bool("stream", false, "emit raw stream records (tick,dims...,value) for streamd")
	ticks := flag.Int("ticks", 10, "regression interval length per tuple")
	pace := flag.Duration("pace", 0, "with -stream: delay between ticks (0 = as fast as possible)")
	format := flag.String("format", "text", "with -stream: record encoding, text or binary")
	queryURL := flag.String("query", "", "with -stream: also load-generate queries against these comma-separated base URLs")
	qinterval := flag.Duration("qinterval", 20*time.Millisecond, "with -query: delay between queries per worker")
	qworkers := flag.Int("qworkers", 2, "with -query: concurrent query workers")
	flag.Parse()

	if !*stream && (*queryURL != "" || *pace != 0 || *format != "text") {
		fmt.Fprintln(os.Stderr, "datagen: -query, -pace and -format only apply with -stream")
		os.Exit(2)
	}
	if *format != "text" && *format != "binary" {
		fmt.Fprintf(os.Stderr, "datagen: -format %q: want text or binary\n", *format)
		os.Exit(2)
	}

	spec, err := gen.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}
	cfg := gen.Config{Spec: spec, Seed: *seed, Ticks: *ticks}
	var ds *gen.Dataset
	if *raw {
		ds, err = gen.GenerateRaw(cfg)
	} else {
		ds, err = gen.Generate(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *stream {
		var stopLoad func()
		if *queryURL != "" {
			stopLoad = startLoad(*queryURL, *qinterval, *qworkers)
		}
		err := writeStream(w, ds, *ticks, *seed, *pace, *format == "binary")
		if stopLoad != nil {
			w.Flush() // deliver the tail before tearing the load down
			stopLoad()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	// Header.
	for d := 0; d < spec.Dims; d++ {
		fmt.Fprintf(w, "dim%d,", d)
	}
	fmt.Fprintln(w, "tb,te,base,slope")
	for _, in := range ds.Inputs {
		for _, m := range in.Members {
			w.WriteString(strconv.FormatInt(int64(m), 10))
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%d,%d,%g,%g\n", in.Measure.Tb, in.Measure.Te, in.Measure.Base, in.Measure.Slope)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d tuples of %s (seed %d)\n", len(ds.Inputs), spec, *seed)
}

// writeStream renders the dataset as raw records for the online engine:
// tuples sharing an m-cell merge (the engine allows one reading per cell
// per tick), each cell synthesizes a noisy series around its regression
// line, and rows stream out in global tick order. With pace > 0 each
// tick's rows are flushed and emission sleeps between ticks, simulating a
// live source. With binary the same records go out as framed columnar
// batches instead of text lines; the float bits are identical either way,
// so a consumer's state is bitwise independent of the encoding.
func writeStream(w *bufio.Writer, ds *gen.Dataset, ticks int, seed int64, pace time.Duration, binary bool) error {
	type cell struct {
		members []int32
		isb     regression.ISB
	}
	var cells []*cell
	index := make(map[string]*cell, len(ds.Inputs))
	var keyBuf []byte
	for _, in := range ds.Inputs {
		keyBuf = keyBuf[:0]
		for _, m := range in.Members {
			keyBuf = strconv.AppendInt(keyBuf, int64(m), 10)
			keyBuf = append(keyBuf, ',')
		}
		c, ok := index[string(keyBuf)]
		if !ok {
			c = &cell{members: in.Members, isb: in.Measure}
			index[string(keyBuf)] = c
			cells = append(cells, c)
			continue
		}
		merged, err := regression.AggregateStandard(c.isb, in.Measure)
		if err != nil {
			return err
		}
		c.isb = merged
	}
	g := timeseries.NewSynth(seed + 2)
	series := make([]*timeseries.Series, len(cells))
	for i, c := range cells {
		series[i] = g.Linear(0, ticks, c.isb.Base, c.isb.Slope, 0.5)
	}
	var bw *wire.Writer
	if binary {
		var err error
		if bw, err = wire.NewWriter(w, ds.Schema.NumDims()); err != nil {
			return err
		}
	}
	var rows int64
	var line []byte
	for t := 0; t < ticks; t++ {
		if pace > 0 && t > 0 {
			if bw != nil {
				// Ship the tick's batch now so a paced consumer sees it.
				if err := bw.Flush(); err != nil {
					return err
				}
			}
			if err := w.Flush(); err != nil {
				return err
			}
			time.Sleep(pace)
		}
		for i, c := range cells {
			if bw != nil {
				if err := bw.Append(int64(t), c.members, series[i].Values[t]); err != nil {
					return err
				}
			} else {
				line = gen.AppendStreamRecord(line[:0], int64(t), c.members, series[i].Values[t])
				if _, err := w.Write(line); err != nil {
					return err
				}
			}
			rows++
		}
	}
	if bw != nil {
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d stream records over %d ticks, %d cells (seed %d)\n",
		rows, ticks, len(cells), seed)
	return nil
}
