package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/client"
)

// loadOp is one typed operation of the load mix.
type loadOp struct {
	name string
	run  func(ctx context.Context, c *client.Client) error
}

// loadOps is the query mix the load generator cycles through — the typed
// client calls an analyst dashboard would issue, all through the Go SDK
// (repro/client) so the SDK itself is exercised under mixed ingest+query
// load. /v1/frame answers on flat and tilted engines alike, and the
// batch op drives POST /v1/query, so the mix works against any streamd.
var loadOps = []loadOp{
	{"health", func(ctx context.Context, c *client.Client) error {
		_, err := c.Health(ctx)
		return err
	}},
	{"exceptions", func(ctx context.Context, c *client.Client) error {
		_, err := c.Exceptions(ctx, client.ExceptionsRequest{K: 8})
		return err
	}},
	{"summary", func(ctx context.Context, c *client.Client) error {
		_, err := c.Summary(ctx)
		return err
	}},
	{"alerts", func(ctx context.Context, c *client.Client) error {
		_, err := c.Alerts(ctx)
		return err
	}},
	{"frame", func(ctx context.Context, c *client.Client) error {
		_, err := c.Frame(ctx, client.FrameRequest{CellRef: client.OCell(0, 0)})
		return err
	}},
	{"forecast", func(ctx context.Context, c *client.Client) error {
		_, err := c.Forecast(ctx, client.ForecastRequest{CellRef: client.OCell(0, 0), Horizon: 60})
		return err
	}},
	{"changes", func(ctx context.Context, c *client.Client) error {
		// Degrades to an empty ranking on flat engines; still exercises
		// the scan path.
		_, err := c.Changes(ctx, client.ChangesRequest{K: 5})
		return err
	}},
	{"batch", func(ctx context.Context, c *client.Client) error {
		reply, err := c.Batch(ctx,
			client.SummaryRequest{},
			client.ExceptionsRequest{K: 4},
			client.AlertsRequest{},
		)
		if err != nil {
			return err
		}
		for _, res := range reply.Results {
			if res.Err != nil {
				return res.Err
			}
		}
		return nil
	}},
}

// startLoad spawns `workers` goroutines issuing typed SDK calls against
// the target base URL, one every `interval` per worker, cycling through
// loadOps. The returned stop function tears the workers down and prints
// a latency report to stderr. Errors (including ErrUnavailable while the
// server has no snapshot yet, after the client's single retry) are
// counted, not fatal: the load generator runs concurrently with the
// pipeline warming up.
func startLoad(baseURL string, interval time.Duration, workers int) func() {
	if workers < 1 {
		workers = 1
	}
	c, err := client.New(
		client.WithEndpoints(strings.Split(baseURL, ",")...),
		client.WithTimeout(5*time.Second),
		client.WithRetries(1),
		client.WithRetryBackoff(50*time.Millisecond))
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: load: %v\n", err)
		return func() {}
	}
	stop := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	results := make([][]time.Duration, workers)
	errs := make([]int64, workers)
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				op := loadOps[(wid+i)%len(loadOps)]
				t0 := time.Now()
				if err := op.run(ctx, c); err != nil {
					errs[wid]++
				} else {
					results[wid] = append(results[wid], time.Since(t0))
				}
				if interval > 0 {
					select {
					case <-stop:
						return
					case <-time.After(interval):
					}
				}
			}
		}(wid)
	}
	return func() {
		close(stop)
		// Let in-flight calls finish (they have their own timeout) so the
		// teardown doesn't count them as errors; cancel only releases the
		// context afterwards.
		wg.Wait()
		cancel()
		var all []time.Duration
		var errors int64
		for wid := range results {
			all = append(all, results[wid]...)
			errors += errs[wid]
		}
		if len(all) == 0 {
			fmt.Fprintf(os.Stderr, "datagen: load: no successful queries (%d errors)\n", errors)
			return
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Fprintf(os.Stderr,
			"datagen: load: %d queries, %d errors, latency p50=%s p95=%s p99=%s max=%s\n",
			len(all), errors,
			percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99), all[len(all)-1])
	}
}

// percentile returns the nearest-rank percentile of a sorted sample: the
// smallest element with at least ⌈p·n⌉ of the sample at or below it,
// clamped to the sample bounds. The previous all[int(p·(n-1))] indexing
// under-picked the tail at small n — p99 of 10 samples landed on the 9th
// value instead of the maximum, collapsing p99 into p90.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
