package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// loadPaths is the query mix the load generator cycles through — the
// endpoints an analyst dashboard would poll. /v1/frame answers on flat
// and tilted engines alike, so the mix works against any streamd.
var loadPaths = []string{
	"/healthz",
	"/v1/exceptions?k=8",
	"/v1/summary",
	"/v1/alerts",
	"/v1/frame?members=0,0",
}

// startLoad spawns `workers` goroutines issuing GET requests against the
// target base URL, one every `interval` per worker, cycling through
// loadPaths. The returned stop function tears the workers down and prints
// a latency report to stderr. Errors (including 503s while the server has
// no snapshot yet) are counted, not fatal: the load generator runs
// concurrently with the pipeline warming up.
func startLoad(baseURL string, interval time.Duration, workers int) func() {
	if workers < 1 {
		workers = 1
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]time.Duration, workers)
	errs := make([]int64, workers)
	client := &http.Client{Timeout: 5 * time.Second}
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := loadPaths[(wid+i)%len(loadPaths)]
				t0 := time.Now()
				resp, err := client.Get(baseURL + path)
				if err != nil {
					errs[wid]++
				} else {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs[wid]++
					} else {
						results[wid] = append(results[wid], time.Since(t0))
					}
				}
				if interval > 0 {
					select {
					case <-stop:
						return
					case <-time.After(interval):
					}
				}
			}
		}(wid)
	}
	return func() {
		close(stop)
		wg.Wait()
		var all []time.Duration
		var errors int64
		for wid := range results {
			all = append(all, results[wid]...)
			errors += errs[wid]
		}
		if len(all) == 0 {
			fmt.Fprintf(os.Stderr, "datagen: load: no successful queries (%d errors)\n", errors)
			return
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		fmt.Fprintf(os.Stderr,
			"datagen: load: %d queries, %d errors, latency p50=%s p95=%s p99=%s max=%s\n",
			len(all), errors,
			percentile(all, 0.50), percentile(all, 0.95), percentile(all, 0.99), all[len(all)-1])
	}
}

// percentile returns the nearest-rank percentile of a sorted sample: the
// smallest element with at least ⌈p·n⌉ of the sample at or below it,
// clamped to the sample bounds. The previous all[int(p·(n-1))] indexing
// under-picked the tail at small n — p99 of 10 samples landed on the 9th
// value instead of the maximum, collapsing p99 into p90.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
