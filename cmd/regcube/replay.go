package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/wal"
)

// runReplay is the `regcube replay` subcommand: re-run a streamd
// write-ahead log through a fresh engine under whatever configuration the
// flags name. Ingest is deterministic, so the result is exactly what a
// live run with this configuration would have produced — shard count, tilt
// chain, and threshold become what-if knobs over recorded history.
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("regcube replay", flag.ContinueOnError)
	walDir := fs.String("wal-dir", "", "write-ahead log directory to replay (required)")
	specStr := fs.String("spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); must match the recording schema's shape")
	unit := fs.Int("unit", 15, "ticks per unit")
	threshold := fs.Float64("threshold", 1, "slope exception threshold")
	alg := fs.String("alg", "mo", "cubing algorithm: mo | popular-path")
	shards := fs.Int("shards", 1, "engine shards; 1 = single-threaded engine")
	tiltStr := fs.String("tilt", "", "tilted trend history chain (same syntax as streamd -tilt)")
	from := fs.Int64("from", 0, "replay from this record sequence (skip earlier records)")
	checkpoint := fs.String("checkpoint", "", "write the post-replay checkpoint to this file")
	quiet := fs.Bool("quiet", false, "suppress per-unit reports; print only the final summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walDir == "" {
		return fmt.Errorf("-wal-dir is required")
	}
	spec, err := gen.ParseSpec(*specStr + "T1") // reuse the D/L/C parser
	if err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	schema, err := spec.StreamSchema()
	if err != nil {
		return err
	}
	algorithm := stream.MOCubing
	if *alg == "popular-path" {
		algorithm = stream.PopularPath
	} else if *alg != "mo" {
		return fmt.Errorf("unknown -alg %q", *alg)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", *shards)
	}
	tiltLevels, err := tilt.ParseLevels(*tiltStr)
	if err != nil {
		return fmt.Errorf("bad -tilt: %w", err)
	}
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: *unit,
		Threshold:    exception.Global(*threshold),
		Algorithm:    algorithm,
		TiltLevels:   tiltLevels,
	}

	report := func(urs []*stream.UnitResult) {
		if *quiet {
			return
		}
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
			}
		}
	}

	var (
		ingest    func(members []int32, tick int64, value float64) ([]*stream.UnitResult, error)
		flush     func() (*stream.UnitResult, error)
		unitsDone func() int64
		setSeq    func(int64) error
		writeCP   func(io.Writer) error
	)
	if *shards > 1 {
		seng, err := stream.NewShardedEngine(cfg, *shards)
		if err != nil {
			return err
		}
		defer seng.Close()
		ingest, flush, unitsDone, setSeq = seng.Ingest, seng.Flush, seng.UnitsDone, seng.SetWALSeq
		writeCP = func(w io.Writer) error {
			scp, err := seng.Checkpoint()
			if err != nil {
				return err
			}
			return persist.WriteShardedCheckpoint(w, scp)
		}
	} else {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			return err
		}
		ingest, flush, unitsDone = eng.Ingest, eng.Flush, eng.UnitsDone
		setSeq = func(seq int64) error { eng.SetWALSeq(seq); return nil }
		writeCP = func(w io.Writer) error {
			return persist.WriteCheckpoint(w, eng.Checkpoint())
		}
	}

	var records int64
	end, err := wal.Replay(*walDir, *from, func(seq int64, rec wal.Record) error {
		closed, ingestErr := ingest(rec.Members, rec.Tick, rec.Value)
		if len(closed) > 0 {
			report(closed)
		}
		if ingestErr != nil {
			return fmt.Errorf("wal record %d: %w", seq, ingestErr)
		}
		records++
		return nil
	})
	if err != nil {
		return err
	}
	ur, err := flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	if *checkpoint != "" {
		// Stamp the log position so the what-if checkpoint is itself
		// resumable: streamd -wal-dir picks up where this replay stopped.
		if err := setSeq(end); err != nil {
			return err
		}
		f, err := os.Create(*checkpoint)
		if err != nil {
			return err
		}
		if err := writeCP(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# replayed %d records (log end %d), %d units\n", records, end, unitsDone())
	return nil
}
