package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/node"
	"repro/internal/stream"
	"repro/internal/wal"
)

// runReplay is the `regcube replay` subcommand: re-run a streamd
// write-ahead log through a fresh engine under whatever configuration the
// flags name. The engine is built through the same construction path as
// the live daemon (node.EngineConfig), and ingest is deterministic, so
// the result is exactly what a live run with this configuration would
// have produced — shard count, tilt chain, and threshold become what-if
// knobs over recorded history.
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("regcube replay", flag.ContinueOnError)
	walDir := fs.String("wal-dir", "", "write-ahead log directory to replay (required)")
	specStr := fs.String("spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); must match the recording schema's shape")
	unit := fs.Int("unit", 15, "ticks per unit")
	threshold := fs.Float64("threshold", 1, "slope exception threshold")
	alg := fs.String("alg", "mo", "cubing algorithm: mo | popular-path")
	shards := fs.Int("shards", 1, "engine shards; 1 = single-threaded engine")
	tiltStr := fs.String("tilt", "", "tilted trend history chain (same syntax as streamd -tilt)")
	from := fs.Int64("from", 0, "replay from this record sequence (skip earlier records)")
	checkpoint := fs.String("checkpoint", "", "write the post-replay checkpoint to this file")
	quiet := fs.Bool("quiet", false, "suppress per-unit reports; print only the final summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walDir == "" {
		return fmt.Errorf("-wal-dir is required")
	}
	a, err := node.EngineConfig{
		Spec:         *specStr,
		TicksPerUnit: *unit,
		Threshold:    *threshold,
		Alg:          *alg,
		Tilt:         *tiltStr,
		Shards:       *shards,
	}.Build()
	if err != nil {
		return err
	}
	defer a.Close()
	schema := a.Schema

	report := func(urs []*stream.UnitResult) {
		if *quiet {
			return
		}
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
			}
		}
	}

	var records int64
	end, err := wal.Replay(*walDir, *from, func(seq int64, rec wal.Record) error {
		closed, ingestErr := a.Ingest(rec.Members, rec.Tick, rec.Value)
		if len(closed) > 0 {
			report(closed)
		}
		if ingestErr != nil {
			return fmt.Errorf("wal record %d: %w", seq, ingestErr)
		}
		records++
		return nil
	})
	if err != nil {
		return err
	}
	ur, err := a.Flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	if *checkpoint != "" {
		// Stamp the log position so the what-if checkpoint is itself
		// resumable: streamd -wal-dir picks up where this replay stopped.
		if err := a.SetWALSeq(end); err != nil {
			return err
		}
		f, err := os.Create(*checkpoint)
		if err != nil {
			return err
		}
		if err := a.WriteCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "# replayed %d records (log end %d), %d units\n", records, end, a.UnitsDone())
	return nil
}
