package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/persist"
)

// runMerge implements `regcube merge`: flatten per-node (or per-shard)
// checkpoint files into one single-engine checkpoint. The inputs must
// have been cut at the same stream position — same open unit, closed-unit
// count, and WAL watermark — which a router-driven cluster guarantees at
// its barriers; anything else is refused rather than merged wrong.
//
//	regcube merge -o merged.ckpt node0.ckpt node1.ckpt node2.ckpt node3.ckpt
func runMerge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	outPath := fs.String("o", "", "output checkpoint path (default stdout)")
	fs.SetOutput(out)
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: regcube merge [-o merged.ckpt] node0.ckpt node1.ckpt ...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return fmt.Errorf("no checkpoint files")
	}
	readers := make([]io.Reader, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		readers[i] = f
	}
	cp, err := cluster.MergeCheckpoints(readers)
	if err != nil {
		return err
	}
	if *outPath == "" {
		return persist.WriteCheckpoint(out, cp)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	if err := persist.WriteCheckpoint(f, cp); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "# merged %d checkpoints at unit %d (%d cells) into %s\n",
		len(paths), cp.Unit, len(cp.Cells), *outPath)
	return nil
}
