// Command regcube runs the full exception-based regression-cube pipeline
// end to end on a synthetic workload and reports the o-layer observation
// deck plus the exception drill-down — the interactive session Example 1
// motivates.
//
// Usage:
//
//	regcube -spec D3L3C10T10K -rate 1 -alg both
//	regcube -spec D2L4C5T10K -threshold 12.5 -alg popular-path -top 10
//
// Either -rate (calibrated exception percentage) or -threshold (explicit
// slope threshold) selects the exception level.
//
// The replay subcommand re-runs a streamd write-ahead log through a fresh
// stream engine under any configuration — shard count, tilt chain,
// exception threshold — for what-if analysis (see replay.go):
//
//	regcube replay -wal-dir wal/ -spec D2L2C4 -unit 15 -shards 8 -tilt calendar
//
// The merge subcommand flattens per-node cluster checkpoints (or a
// sharded engine's per-shard set) into one single-engine checkpoint
// (see merge.go):
//
//	regcube merge -o merged.ckpt node0.ckpt node1.ckpt node2.ckpt node3.ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/regression"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		if err := runReplay(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "regcube replay: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		if err := runMerge(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "regcube merge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	specStr := flag.String("spec", "D3L3C10T10K", "dataset spec (D/L/C/T convention)")
	seed := flag.Int64("seed", 2002, "generator seed")
	rate := flag.Float64("rate", 1, "target exception percentage (calibrated); ignored when -threshold is set")
	threshold := flag.Float64("threshold", -1, "explicit slope threshold (overrides -rate)")
	alg := flag.String("alg", "both", "algorithm: mo | popular-path | both")
	top := flag.Int("top", 5, "top-N steepest o-layer cells and exceptions to print")
	flag.Parse()

	spec, err := gen.ParseSpec(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "regcube: %v\n", err)
		os.Exit(2)
	}
	ds, err := gen.Generate(gen.Config{Spec: spec, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "regcube: %v\n", err)
		os.Exit(1)
	}
	thr := *threshold
	if thr < 0 {
		thr = ds.CalibrateThreshold(*rate / 100)
		fmt.Printf("calibrated threshold %.4f for %.2f%% exceptions on %s\n\n", thr, *rate, spec)
	}

	runOne := func(name string) error {
		var res *core.Result
		var err error
		start := time.Now()
		switch name {
		case "mo":
			res, err = core.MOCubing(ds.Schema, ds.Inputs, exception.Global(thr))
		case "popular-path":
			lattice := cube.NewLattice(ds.Schema)
			res, err = core.PopularPath(ds.Schema, ds.Inputs, exception.Global(thr), lattice.DefaultPath())
		default:
			return fmt.Errorf("unknown algorithm %q", name)
		}
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		st := res.Stats
		fmt.Printf("== %s ==\n", st.Algorithm)
		fmt.Printf("  tuples=%d tree-nodes=%d leaves=%d cuboids=%d\n",
			st.Tuples, st.TreeNodes, st.TreeLeaves, st.CuboidsComputed)
		fmt.Printf("  cells computed=%d retained=%d exceptions=%d\n",
			st.CellsComputed, st.CellsRetained, len(res.Exceptions))
		fmt.Printf("  time=%v (build %v + cube %v), peak-mem≈%.1f MB\n",
			elapsed.Round(time.Millisecond), st.BuildTime.Round(time.Millisecond),
			st.CubeTime.Round(time.Millisecond), float64(st.PeakBytes)/(1<<20))

		printTop("o-layer observation deck (steepest cells)", ds.Schema, cellsOf(res.OLayer), *top)
		printTop("exception cells between the layers", ds.Schema, cellsOf(res.Exceptions), *top)
		fmt.Println()
		return nil
	}

	names := []string{*alg}
	if *alg == "both" {
		names = []string{"mo", "popular-path"}
	}
	for _, n := range names {
		if err := runOne(n); err != nil {
			fmt.Fprintf(os.Stderr, "regcube: %v\n", err)
			os.Exit(1)
		}
	}
}

func cellsOf(m map[cube.CellKey]regression.ISB) []core.Cell {
	out := make([]core.Cell, 0, len(m))
	for k, isb := range m {
		out = append(out, core.Cell{Key: k, ISB: isb})
	}
	return out
}

func printTop(title string, schema *cube.Schema, cells []core.Cell, n int) {
	fmt.Printf("  %s:\n", title)
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i].ISB.Slope, cells[j].ISB.Slope
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		return a > b
	})
	if len(cells) == 0 {
		fmt.Println("    (none)")
		return
	}
	for i, c := range cells {
		if i >= n {
			break
		}
		fmt.Printf("    %-40s %v slope=%+.3f mean=%.2f\n",
			c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope, c.ISB.Mean())
	}
}
