// Command benchjson converts `go test -bench` text output into a JSON
// benchmark record and merges it into a trajectory file (BENCH_PR2.json and
// successors), so performance PRs carry their own before/after evidence.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig8|Fig9|Sharded' -benchmem . |
//	    go run ./cmd/benchjson -o BENCH_PR2.json -label baseline
//
// Each run is stored under its -label; re-running with the same label
// replaces that section and leaves the others intact, so a perf PR captures
// a "baseline" section before the change and an optimized section after it,
// in one file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics is one benchmark's parsed per-op measurements. NsPerOp and the
// -benchmem pair are first-class; everything else (cells/op, peakMB/op,
// units/op, ...) lands in Extra keyed by its unit.
type Metrics struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsPerO float64            `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Section is one labeled capture: the environment line plus every parsed
// benchmark, keyed by full benchmark name (including sub-bench and GOMAXPROCS
// suffix).
type Section struct {
	CapturedAt string             `json:"captured_at"`
	GoVersion  string             `json:"go_version,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benches    map[string]Metrics `json:"benches"`
	// Speedups holds before/after ratios computed with -ratio: for each
	// bench whose name contains the OLD fragment and has a NEW-fragment
	// counterpart, old ns/op divided by new ns/op, keyed by the
	// counterpart's name.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// speedups pairs each bench whose name contains old with the bench named
// by swapping old for new, and returns ns/op ratios (old/new — >1 means
// the new path is faster).
func speedups(benches map[string]Metrics, old, new string) map[string]float64 {
	out := make(map[string]float64)
	for name, m := range benches {
		if !strings.Contains(name, old) {
			continue
		}
		counter := strings.Replace(name, old, new, 1)
		cm, ok := benches[counter]
		if !ok || cm.NsPerOp == 0 {
			continue
		}
		out[counter] = m.NsPerOp / cm.NsPerOp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func main() {
	out := flag.String("o", "", "JSON file to merge into (required)")
	label := flag.String("label", "", "section label, e.g. baseline or pr2 (required)")
	ratio := flag.String("ratio", "", "OLD=NEW name fragments; record ns/op speedups between paired benches (e.g. /text/=/binary/)")
	flag.Parse()
	if *out == "" || *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -o and -label are required")
		os.Exit(2)
	}
	var ratioOld, ratioNew string
	if *ratio != "" {
		var ok bool
		ratioOld, ratioNew, ok = strings.Cut(*ratio, "=")
		if !ok || ratioOld == "" || ratioNew == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -ratio wants OLD=NEW name fragments")
			os.Exit(2)
		}
	}

	sec, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(sec.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if ratioOld != "" {
		sec.Speedups = speedups(sec.Benches, ratioOld, ratioNew)
	}

	file := make(map[string]*Section)
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: existing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	file[*label] = sec

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(sec.Benches))
	for n := range sec.Benches {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchjson: wrote %d benches to %s section %q\n", len(names), *out, *label)
	if len(sec.Speedups) > 0 {
		pairs := make([]string, 0, len(sec.Speedups))
		for n := range sec.Speedups {
			pairs = append(pairs, n)
		}
		sort.Strings(pairs)
		for _, n := range pairs {
			fmt.Printf("benchjson: speedup %s: %.2fx\n", n, sec.Speedups[n])
		}
	}
}

// parse reads `go test -bench` output: env header lines, then one line per
// benchmark of the form
//
//	BenchmarkName-8   123   4567 ns/op   89 B/op   1 allocs/op   5 cells/op
func parse(sc *bufio.Scanner) (*Section, error) {
	sec := &Section{
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		Benches:    make(map[string]Metrics),
	}
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			sec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"), strings.HasPrefix(line, "pkg:"):
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Metrics{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = val
			case "B/op":
				m.BytesPerOp = val
			case "allocs/op":
				m.AllocsPerO = val
			default:
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[unit] = val
			}
		}
		sec.Benches[fields[0]] = m
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sec.GoVersion = runtime.Version()
	return sec, nil
}
