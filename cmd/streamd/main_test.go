package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func records(lines ...string) *strings.Reader {
	return strings.NewReader(strings.Join(lines, "\n") + "\n")
}

func TestRunEndToEnd(t *testing.T) {
	in := records(
		"0,0,1.0",
		"1,0,2.0",
		"2,0,3.0",
		"3,0,4.0", // unit 0 complete (unit=4)
		"4,0,5.0",
	)
	var out bytes.Buffer
	if err := run("D1L2C2", 4, 0.5, "mo", "", 1, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "[unit 0]") {
		t.Fatalf("missing unit 0 report: %q", got)
	}
	if !strings.Contains(got, "ALERT") {
		t.Fatalf("slope 1 at threshold 0.5 must alert: %q", got)
	}
	if !strings.Contains(got, "# 5 records, 2 units") {
		t.Fatalf("missing summary: %q", got)
	}
}

func TestRunPopularPath(t *testing.T) {
	in := records("0,0,1.0", "1,0,2.0")
	var out bytes.Buffer
	if err := run("D1L2C2", 2, 99, "popular-path", "", 1, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "popular-path") {
		t.Fatalf("wrong algorithm: %q", out.String())
	}
}

// The sharded engine prints the same reports as the single engine for the
// same stream.
func TestRunShardedMatchesSingle(t *testing.T) {
	lines := []string{
		"0,0,0,1.0", "0,1,2,4.0", "1,0,0,2.0", "1,3,1,1.0",
		"2,0,0,3.0", "2,1,2,2.0", "3,0,0,4.0", "3,3,1,9.0",
		"4,0,0,5.0", "4,2,3,1.0", "5,1,2,6.0",
	}
	var single, sharded bytes.Buffer
	if err := run("D2L2C2", 4, 0.5, "mo", "", 1, records(lines...), &single); err != nil {
		t.Fatal(err)
	}
	if err := run("D2L2C2", 4, 0.5, "mo", "", 4, records(lines...), &sharded); err != nil {
		t.Fatal(err)
	}
	// Alerts print sorted only in sharded mode, so compare line sets.
	norm := func(s string) string {
		ls := strings.Split(strings.TrimSpace(s), "\n")
		sort.Strings(ls)
		return strings.Join(ls, "\n")
	}
	if norm(single.String()) != norm(sharded.String()) {
		t.Fatalf("sharded output differs:\n%s\nvs single:\n%s", sharded.String(), single.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("garbage", 4, 1, "mo", "", 1, records("0,0,1"), &out); err == nil {
		t.Fatal("expected spec error")
	}
	if err := run("D1L2C2", 4, 1, "nope", "", 1, records("0,0,1"), &out); err == nil {
		t.Fatal("expected algorithm error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", 0, records("0,0,1"), &out); err == nil {
		t.Fatal("expected shard-count error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", 1, records("x,0,1"), &out); err == nil {
		t.Fatal("expected tick parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", 1, records("0,x,1"), &out); err == nil {
		t.Fatal("expected member parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", 1, records("0,0,x"), &out); err == nil {
		t.Fatal("expected value parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", 1, records("0,0"), &out); err == nil {
		t.Fatal("expected column count error")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "state.json")

	// First run: 6 ticks of unit size 4 → one closed unit + checkpoint.
	var out1 bytes.Buffer
	in1 := records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6")
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 1, in1, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run resumes from the checkpoint (unit 2 open after flush).
	var out2 bytes.Buffer
	in2 := records("8,0,1", "9,0,2")
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 1, in2, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "# resumed at unit") {
		t.Fatalf("missing resume banner: %q", out2.String())
	}
}

// A checkpoint written at one shard count resumes at another, in both
// directions across the v1/v2 envelope versions.
func TestRunCheckpointAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()

	// v1 (single) → sharded resume.
	cpPath := filepath.Join(dir, "v1.json")
	var out bytes.Buffer
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 1,
		records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6"), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 4, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit 2") {
		t.Fatalf("v1→sharded resume failed: %q", out.String())
	}

	// v2 (sharded) → single resume.
	cpPath = filepath.Join(dir, "v2.json")
	out.Reset()
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 4,
		records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6"), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run("D1L2C2", 4, 99, "mo", cpPath, 1, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit 2") {
		t.Fatalf("v2→single resume failed: %q", out.String())
	}
}
