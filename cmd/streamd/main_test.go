package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func records(lines ...string) *strings.Reader {
	return strings.NewReader(strings.Join(lines, "\n") + "\n")
}

// runOpts drives run with defaults matching the old positional signature.
func runOpts(spec string, unit int, threshold float64, alg, checkpoint string, shards int, in io.Reader, out io.Writer) error {
	return run(context.Background(), options{
		spec: spec, unit: unit, threshold: threshold, alg: alg,
		checkpoint: checkpoint, shards: shards,
	}, in, out)
}

func TestRunEndToEnd(t *testing.T) {
	in := records(
		"0,0,1.0",
		"1,0,2.0",
		"2,0,3.0",
		"3,0,4.0", // unit 0 complete (unit=4)
		"4,0,5.0",
	)
	var out bytes.Buffer
	if err := runOpts("D1L2C2", 4, 0.5, "mo", "", 1, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "[unit 0]") {
		t.Fatalf("missing unit 0 report: %q", got)
	}
	if !strings.Contains(got, "ALERT") {
		t.Fatalf("slope 1 at threshold 0.5 must alert: %q", got)
	}
	if !strings.Contains(got, "# 5 records, 2 units") {
		t.Fatalf("missing summary: %q", got)
	}
}

func TestRunPopularPath(t *testing.T) {
	in := records("0,0,1.0", "1,0,2.0")
	var out bytes.Buffer
	if err := runOpts("D1L2C2", 2, 99, "popular-path", "", 1, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "popular-path") {
		t.Fatalf("wrong algorithm: %q", out.String())
	}
}

// The sharded engine prints the same reports as the single engine for the
// same stream.
func TestRunShardedMatchesSingle(t *testing.T) {
	lines := []string{
		"0,0,0,1.0", "0,1,2,4.0", "1,0,0,2.0", "1,3,1,1.0",
		"2,0,0,3.0", "2,1,2,2.0", "3,0,0,4.0", "3,3,1,9.0",
		"4,0,0,5.0", "4,2,3,1.0", "5,1,2,6.0",
	}
	var single, sharded bytes.Buffer
	if err := runOpts("D2L2C2", 4, 0.5, "mo", "", 1, records(lines...), &single); err != nil {
		t.Fatal(err)
	}
	if err := runOpts("D2L2C2", 4, 0.5, "mo", "", 4, records(lines...), &sharded); err != nil {
		t.Fatal(err)
	}
	// Alerts print sorted only in sharded mode, so compare line sets.
	norm := func(s string) string {
		ls := strings.Split(strings.TrimSpace(s), "\n")
		sort.Strings(ls)
		return strings.Join(ls, "\n")
	}
	if norm(single.String()) != norm(sharded.String()) {
		t.Fatalf("sharded output differs:\n%s\nvs single:\n%s", sharded.String(), single.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := runOpts("garbage", 4, 1, "mo", "", 1, records("0,0,1"), &out); err == nil {
		t.Fatal("expected spec error")
	}
	if err := runOpts("D1L2C2", 4, 1, "nope", "", 1, records("0,0,1"), &out); err == nil {
		t.Fatal("expected algorithm error")
	}
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 0, records("0,0,1"), &out); err == nil {
		t.Fatal("expected shard-count error")
	}
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, records("x,0,1"), &out); err == nil {
		t.Fatal("expected tick parse error")
	}
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, records("0,x,1"), &out); err == nil {
		t.Fatal("expected member parse error")
	}
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, records("0,0,x"), &out); err == nil {
		t.Fatal("expected value parse error")
	}
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, records("0,0"), &out); err == nil {
		t.Fatal("expected column count error")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "state.json")

	// First run: 6 ticks of unit size 4 → one closed unit + checkpoint.
	var out1 bytes.Buffer
	in1 := records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6")
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 1, in1, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run resumes from the checkpoint (unit 2 open after flush).
	var out2 bytes.Buffer
	in2 := records("8,0,1", "9,0,2")
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 1, in2, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "# resumed at unit") {
		t.Fatalf("missing resume banner: %q", out2.String())
	}
}

// A checkpoint written at one shard count resumes at another, in both
// directions across the v1/v2 envelope versions.
func TestRunCheckpointAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()

	// v1 (single) → sharded resume.
	cpPath := filepath.Join(dir, "v1.json")
	var out bytes.Buffer
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 1,
		records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6"), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 4, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit 2") {
		t.Fatalf("v1→sharded resume failed: %q", out.String())
	}

	// v2 (sharded) → single resume.
	cpPath = filepath.Join(dir, "v2.json")
	out.Reset()
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 4,
		records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6"), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runOpts("D1L2C2", 4, 99, "mo", cpPath, 1, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit 2") {
		t.Fatalf("v2→single resume failed: %q", out.String())
	}
}

// syncBuffer lets the test read run's output while run keeps writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`# serving http on (\S+)`)

// startServing launches run with -listen on an ephemeral port and
// returns the base URL, the stdin pipe to feed records through, and the
// channel run's error arrives on when it exits.
func startServing(t *testing.T, ctx context.Context, shards int, out *syncBuffer) (string, *io.PipeWriter, chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			spec: "D1L2C2", unit: 4, threshold: 0.5, alg: "mo",
			shards: shards, listen: "127.0.0.1:0",
		}, pr, out)
	}()
	var addr string
	for i := 0; i < 200; i++ {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server address never printed: %q", out.String())
	}
	return "http://" + addr, pw, done
}

// With -listen, completed units are queryable over HTTP while the stream
// is still open, and EOF shuts the listener down.
func TestRunServeEndpoints(t *testing.T) {
	var out syncBuffer
	url, pw, done := startServing(t, context.Background(), 2, &out)

	for tick := 0; tick < 9; tick++ { // closes units 0 and 1
		for m := 0; m < 4; m++ {
			fmt.Fprintf(pw, "%d,%d,%g\n", tick, m, float64(tick*(m+1)))
		}
	}
	get := func(path string) map[string]any {
		t.Helper()
		var resp *http.Response
		var err error
		for i := 0; i < 100; i++ { // the pipe delivers asynchronously
			resp, err = http.Get(url + path)
			if err == nil && resp.StatusCode == http.StatusOK {
				break
			}
			if resp != nil {
				resp.Body.Close()
				resp = nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		if resp == nil {
			t.Fatalf("GET %s never succeeded: %v", path, err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	health := get("/healthz")
	if health["serving"] != true {
		t.Fatalf("healthz = %v", health)
	}
	ex := get("/v1/exceptions?k=5")
	if ex["cells"] == nil {
		t.Fatalf("exceptions = %v", ex)
	}
	al := get("/v1/alerts")
	if al["alerts"] == nil {
		t.Fatalf("alerts = %v", al)
	}

	pw.Close() // EOF: run flushes and exits, shutting down the server
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "records,") {
		t.Fatalf("missing final summary: %q", out.String())
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still up after shutdown")
	}
}

// A signal mid-stream flushes the final partial unit, checkpoints, and
// exits cleanly — the stdin pipe is still open.
func TestRunSignalGracefulFlush(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	_, pw, done := startServing(t, ctx, 1, &out)
	defer pw.Close()

	for tick := 0; tick < 3; tick++ { // partial unit 0 only
		fmt.Fprintf(pw, "%d,0,%g\n", tick, float64(tick+1))
	}
	// Wait until the records are through the pipe and ingested, then
	// deliver the "signal".
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not exit after signal")
	}
	got := out.String()
	if !strings.Contains(got, "# signal: flushing final unit") {
		t.Fatalf("missing signal banner: %q", got)
	}
	if !strings.Contains(got, "[unit 0]") {
		t.Fatalf("final partial unit not flushed: %q", got)
	}
	if !strings.Contains(got, "# 3 records, 1 units") {
		t.Fatalf("missing summary: %q", got)
	}
}

func TestParseTiltLevels(t *testing.T) {
	if levels, err := parseTiltLevels(""); err != nil || levels != nil {
		t.Fatalf("empty -tilt = %v, %v", levels, err)
	}
	cal, err := parseTiltLevels("calendar")
	if err != nil || len(cal) != 4 || cal[3].Name != "month" {
		t.Fatalf("calendar = %+v, %v", cal, err)
	}
	logs, err := parseTiltLevels("log5x8")
	if err != nil || len(logs) != 5 || logs[1].Multiple != 2 || logs[0].Slots != 8 {
		t.Fatalf("log5x8 = %+v, %v", logs, err)
	}
	custom, err := parseTiltLevels("q:1:4,h:4:24")
	if err != nil || len(custom) != 2 || custom[1].Name != "h" || custom[1].Multiple != 4 || custom[1].Slots != 24 {
		t.Fatalf("custom = %+v, %v", custom, err)
	}
	for _, bad := range []string{"q:1", "q:x:4", "q:1:y", "log-1x4", "log0x4", "log3x0", "log3x4junk"} {
		if _, err := parseTiltLevels(bad); err == nil {
			t.Fatalf("%q parsed silently", bad)
		}
	}
}

// A -tilt run writes a v3 checkpoint that resumes into both tilted and
// flat engines, and a pre-tilt checkpoint resumes into a -tilt run.
func TestRunTiltCheckpointCompat(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "tilt.json")
	six := func() io.Reader { return records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6") }

	var out bytes.Buffer
	if err := run(context.Background(), options{
		spec: "D1L2C2", unit: 4, threshold: 99, alg: "mo",
		checkpoint: cpPath, shards: 1, tilt: "log3x4",
	}, six(), &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"version":3`) {
		t.Fatalf("tilted run wrote %.60s, want v3", raw)
	}
	// v3 → tilted resume (sharded, different chain shape is rejected by
	// the engine, so keep the chain).
	out.Reset()
	if err := run(context.Background(), options{
		spec: "D1L2C2", unit: 4, threshold: 99, alg: "mo",
		checkpoint: cpPath, shards: 2, tilt: "log3x4",
	}, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit 2") {
		t.Fatalf("v3→tilted resume failed: %q", out.String())
	}
	// v3 → flat resume.
	out.Reset()
	if err := run(context.Background(), options{
		spec: "D1L2C2", unit: 4, threshold: 99, alg: "mo",
		checkpoint: cpPath, shards: 1,
	}, records("12,0,1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit") {
		t.Fatalf("v3→flat resume failed: %q", out.String())
	}
	// Pre-tilt (v1) file → -tilt run reseeds frames.
	flatPath := filepath.Join(dir, "flat.json")
	out.Reset()
	if err := runOpts("D1L2C2", 4, 99, "mo", flatPath, 1, six(), &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), options{
		spec: "D1L2C2", unit: 4, threshold: 99, alg: "mo",
		checkpoint: flatPath, shards: 1, tilt: "calendar",
	}, records("8,0,1", "9,0,2"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# resumed at unit") {
		t.Fatalf("v1→tilted resume failed: %q", out.String())
	}
}
