package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func records(lines ...string) *strings.Reader {
	return strings.NewReader(strings.Join(lines, "\n") + "\n")
}

func TestRunEndToEnd(t *testing.T) {
	in := records(
		"0,0,1.0",
		"1,0,2.0",
		"2,0,3.0",
		"3,0,4.0", // unit 0 complete (unit=4)
		"4,0,5.0",
	)
	var out bytes.Buffer
	if err := run("D1L2C2", 4, 0.5, "mo", "", in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "[unit 0]") {
		t.Fatalf("missing unit 0 report: %q", got)
	}
	if !strings.Contains(got, "ALERT") {
		t.Fatalf("slope 1 at threshold 0.5 must alert: %q", got)
	}
	if !strings.Contains(got, "# 5 records, 2 units") {
		t.Fatalf("missing summary: %q", got)
	}
}

func TestRunPopularPath(t *testing.T) {
	in := records("0,0,1.0", "1,0,2.0")
	var out bytes.Buffer
	if err := run("D1L2C2", 2, 99, "popular-path", "", in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "popular-path") {
		t.Fatalf("wrong algorithm: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("garbage", 4, 1, "mo", "", records("0,0,1"), &out); err == nil {
		t.Fatal("expected spec error")
	}
	if err := run("D1L2C2", 4, 1, "nope", "", records("0,0,1"), &out); err == nil {
		t.Fatal("expected algorithm error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", records("x,0,1"), &out); err == nil {
		t.Fatal("expected tick parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", records("0,x,1"), &out); err == nil {
		t.Fatal("expected member parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", records("0,0,x"), &out); err == nil {
		t.Fatal("expected value parse error")
	}
	if err := run("D1L2C2", 4, 1, "mo", "", records("0,0"), &out); err == nil {
		t.Fatal("expected column count error")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(dir, "state.json")

	// First run: 6 ticks of unit size 4 → one closed unit + checkpoint.
	var out1 bytes.Buffer
	in1 := records("0,0,1", "1,0,2", "2,0,3", "3,0,4", "4,0,5", "5,0,6")
	if err := run("D1L2C2", 4, 99, "mo", cpPath, in1, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Second run resumes from the checkpoint (unit 2 open after flush).
	var out2 bytes.Buffer
	in2 := records("8,0,1", "9,0,2")
	if err := run("D1L2C2", 4, 99, "mo", cpPath, in2, &out2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "# resumed at unit") {
		t.Fatalf("missing resume banner: %q", out2.String())
	}
}
