package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// binaryStream encodes text-format record lines ("tick,members...,value")
// into the framed columnar wire format, cutting a frame every batchRecords
// records.
func binaryStream(t *testing.T, dims, batchRecords int, lines ...string) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := wire.NewWriter(&buf, dims)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchRecords = batchRecords
	members := make([]int32, dims)
	for _, l := range lines {
		fields := strings.Split(l, ",")
		if len(fields) != dims+2 {
			t.Fatalf("record %q has %d fields, want %d", l, len(fields), dims+2)
		}
		var tick int64
		var value float64
		if _, err := fmt.Sscan(fields[0], &tick); err != nil {
			t.Fatal(err)
		}
		for d := 0; d < dims; d++ {
			if _, err := fmt.Sscan(fields[1+d], &members[d]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := fmt.Sscan(fields[dims+1], &value); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(tick, members, value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// streamd auto-detects the binary framing on the same stdin and produces
// the same reports as the text path.
func TestRunBinaryEndToEnd(t *testing.T) {
	lines := []string{"0,0,1.0", "1,0,2.0", "2,0,3.0", "3,0,4.0", "4,0,5.0"}
	var out bytes.Buffer
	if err := runOpts("D1L2C2", 4, 0.5, "mo", "", 1, binaryStream(t, 1, 2, lines...), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "[unit 0]") || !strings.Contains(got, "ALERT") {
		t.Fatalf("missing unit report or alert: %q", got)
	}
	if !strings.Contains(got, "# 5 records, 2 units") {
		t.Fatalf("missing summary: %q", got)
	}
}

// The same records through text and binary ingest leave bitwise-identical
// checkpoints at every shard count — the encoding changes the envelope,
// never the state.
func TestRunBinaryMatchesTextBitwise(t *testing.T) {
	var lines []string
	for tick := 0; tick < 11; tick++ {
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				lines = append(lines, fmt.Sprintf("%d,%d,%d,%g", tick, a, b, float64(tick)*0.25*float64(a+2*b+1)-3))
			}
		}
	}
	for _, shards := range []int{1, 4} {
		for _, batch := range []int{1, 7, 4096} {
			dir := t.TempDir()
			cpText := filepath.Join(dir, "text.cp")
			cpBin := filepath.Join(dir, "bin.cp")
			var outText, outBin bytes.Buffer
			if err := runOpts("D2L2C2", 4, 0.5, "mo", cpText, shards, records(lines...), &outText); err != nil {
				t.Fatal(err)
			}
			if err := runOpts("D2L2C2", 4, 0.5, "mo", cpBin, shards, binaryStream(t, 2, batch, lines...), &outBin); err != nil {
				t.Fatal(err)
			}
			textCP, err := os.ReadFile(cpText)
			if err != nil {
				t.Fatal(err)
			}
			binCP, err := os.ReadFile(cpBin)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(textCP, binCP) {
				t.Fatalf("shards=%d batch=%d: binary-fed checkpoint differs from text-fed", shards, batch)
			}
			// Reports agree as line sets (alert order within a unit is not
			// canonical in single-engine mode).
			norm := func(s string) string {
				ls := strings.Split(strings.TrimSpace(s), "\n")
				sort.Strings(ls)
				return strings.Join(ls, "\n")
			}
			if norm(outText.String()) != norm(outBin.String()) {
				t.Fatalf("shards=%d batch=%d: binary reports differ:\n%s\nvs text:\n%s",
					shards, batch, outBin.String(), outText.String())
			}
		}
	}
}

func TestRunBinaryErrors(t *testing.T) {
	lines := []string{"0,0,1.0", "1,0,2.0"}
	var out bytes.Buffer

	// Dimension mismatch between the stream header and -spec.
	if err := runOpts("D2L2C2", 4, 1, "mo", "", 1, binaryStream(t, 1, 4, lines...), &out); err == nil {
		t.Fatal("expected dims mismatch error")
	} else if !strings.Contains(err.Error(), "dimensions") {
		t.Fatalf("dims mismatch error = %v", err)
	}

	// A bit flip inside a frame is a decode error, not a hang or a panic.
	full, err := io.ReadAll(binaryStream(t, 1, 4, lines...))
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-1] ^= 0x20
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, bytes.NewReader(full), &out); err == nil {
		t.Fatal("expected corrupt frame error")
	}

	// A stream that dies mid-frame surfaces a torn-stream error.
	if err := runOpts("D1L2C2", 4, 1, "mo", "", 1, bytes.NewReader(full[:len(full)-3]), &out); err == nil {
		t.Fatal("expected torn frame error")
	}
}

// The ingest counters on /metrics move as binary frames decode.
func TestRunBinaryIngestMetrics(t *testing.T) {
	var out syncBuffer
	url, pw, done := startServing(t, context.Background(), 2, &out)

	// Feed a binary stream through the pipe: header, then records.
	w, err := wire.NewWriter(pw, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.BatchRecords = 4
	for tick := 0; tick < 9; tick++ {
		for m := int32(0); m < 4; m++ {
			if err := w.Append(int64(tick), []int32{m}, float64(tick+1)*float64(m+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// The last frame's stats bump happens after the pipe write unblocks,
	// so poll until the counters land.
	want := []string{
		`regcube_ingest_records_total{format="binary",source="stdin"} 36`,
		`regcube_ingest_frames_total{format="binary",source="stdin"} 9`, // 36 records, 4 per batch
		`regcube_ingest_decode_errors_total{format="binary",source="stdin"} 0`,
	}
	var body string
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		body = string(raw)
		ok := true
		for _, w := range want {
			if !strings.Contains(body, w) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if i == 199 {
			t.Fatalf("ingest counters never reached %q:\n%s", want, body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// The text path reports through the same counters under its own label.
func TestRunTextIngestMetrics(t *testing.T) {
	var out syncBuffer
	url, pw, done := startServing(t, context.Background(), 1, &out)

	for tick := 0; tick < 5; tick++ {
		fmt.Fprintf(pw, "%d,0,%g\n", tick, float64(tick+1))
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), `regcube_ingest_records_total{format="text",source="stdin"} 5`) &&
			strings.Contains(string(raw), `regcube_ingest_decode_errors_total{format="text",source="stdin"} 0`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("text ingest counters never moved:\n%s", raw)
		}
		time.Sleep(10 * time.Millisecond)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
