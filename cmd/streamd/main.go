// Command streamd runs the online analyzer (§4.5) over a record stream
// from stdin and prints o-layer alerts with their exception drill-down as
// units complete. It checkpoints its state so a restart resumes mid-unit
// without data loss.
//
// The input format is auto-detected: a stream opening with the
// "RGCWIRE1" magic is the binary columnar wire format (length-prefixed
// CRC32C frames carrying record batches, see internal/wire and DESIGN.md
// §11), decoded with zero per-record allocation; anything else is the
// text format below. `datagen -stream -format=binary | streamd` is the
// fast path — the sharded router partitions whole batches with one
// ancestor-table pass per dimension.
//
// With -shards N > 1 the analyzer hash-partitions m-layer cells by their
// o-layer ancestors across N per-shard engines that ingest and cube in
// parallel (see stream.ShardedEngine); the merged output is identical to
// a single engine's, with alerts deterministically sorted. The default is
// GOMAXPROCS; -shards 1 runs the plain single-threaded engine.
//
// With -listen ADDR streamd also serves the HTTP/JSON query API
// (internal/serve) from per-unit engine snapshots, so analysts can hit
// /v1/exceptions, /v1/trend, etc. while ingestion continues at full rate.
//
// With -alert-crit T > 0 the stateful alert lifecycle (internal/alert)
// subscribes to the engine's snapshot bus: consecutive unit snapshots are
// diffed into level-transition events (ok → warn → crit and back), deduped
// per cell, flap-suppressed with an -alert-hold unit hold, and inhibited
// for drill-down cells whose o-layer ancestor is already firing. Events
// print as ALERTEVENT lines and, with -alert-webhook, POST to the given
// URL with capped exponential retries; /v1/alerts/events serves the
// recent-event ring.
//
// With -forecast-threshold V (and a -forecast-horizon budget) the
// predictive "forecast" topic joins the lifecycle: each unit, every
// o-cell's trailing history is extrapolated (Theorem 3.3 aggregation of
// its per-unit fits), and a cell forecast to reach V within the budget
// goes critical — within twice the budget, warn — through the same
// dedup/hold machinery, before the measured slope trips anything. The
// same two flags are the GET-shim defaults of /v1/forecast, and
// -change-score is the default divergence cutoff of /v1/changes.
//
// On SIGINT/SIGTERM streamd stops reading, ingests every record it has
// already parsed, shuts the HTTP listener down, flushes the final partial
// unit, saves the checkpoint, and drains the alert pipeline before
// exiting 0. (Bytes the CSV reader buffered but had not yet parsed are
// abandoned, as with any streaming shutdown.)
//
// With -tilt the flat per-o-cell trend history is replaced by a tilt time
// frame (§4.1): each closed unit promotes through a level chain (e.g.
// quarter → hour → day → month), so /v1/trend?level= and /v1/frame reach
// far into the past at coarser granularity while per-cell state stays
// bounded by the chain's slot capacity.
//
// With -wal-dir streamd appends every record to a segmented, CRC32C-framed
// write-ahead log before ingesting it (see internal/wal). Checkpoints then
// carry the log watermark, and a restart — graceful or kill -9 — replays
// the durable records past the watermark to rebuild the open unit exactly;
// -wal-sync picks the fsync policy (batch / interval[=dur] / off). The
// same log feeds `regcube replay` for what-if reprocessing under a
// different shard count, tilt chain, or threshold.
//
// Checkpoint files are versioned: a single engine writes version 1 (one
// checkpoint), a sharded engine writes version 2 (one checkpoint per
// shard), and -tilt engines write version 3 (either layout plus the
// per-o-cell frames). Any version loads regardless of the current -shards
// or -tilt value — v1 files repartition across the shards, v2 files merge
// back into a single engine, pre-tilt files reseed frames from their flat
// history, and v3 files load into flat engines through the derived
// finest-level history — so both knobs can change freely between restarts.
//
// Text record format (no header): tick,dim0,...,dimN,value
//
// Usage:
//
//	datagen-style producer | streamd -spec D2L2C4 -unit 15 -threshold 2
//	streamd -spec D2L2C4 -unit 15 -threshold 2 -checkpoint state.json < records.csv
//	streamd -spec D2L2C4 -shards 8 -listen :8080 -checkpoint state.json < records.csv
//
// The runtime itself — engine construction, WAL replay, ingest sources,
// the query server, the alert lifecycle, and the ordered shutdown — lives
// in internal/node; this binary is flag parsing over node.Run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/node"
	"repro/internal/tilt"
)

// options collects the flag values so tests drive run directly.
type options struct {
	spec         string
	unit         int
	threshold    float64
	alg          string
	checkpoint   string
	shards       int
	listen       string
	ingestListen string
	nodeID       string
	tilt         string
	walDir       string
	walSync      string
	walSegBytes  int64
	alertWarn    float64
	alertCrit    float64
	alertHold    int
	alertWebhook string
	fcastThresh  float64
	fcastHorizon int64
	changeScore  float64
}

func main() {
	var opt options
	flag.StringVar(&opt.spec, "spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); "+
		"the o-layer sits at level 1 per dimension, bounding -shards parallelism by fanout^dims o-cells")
	flag.IntVar(&opt.unit, "unit", 15, "ticks per finest tilt-frame unit")
	flag.Float64Var(&opt.threshold, "threshold", 1, "slope exception threshold")
	flag.StringVar(&opt.alg, "alg", "mo", "cubing algorithm: mo | popular-path")
	flag.StringVar(&opt.checkpoint, "checkpoint", "", "checkpoint file (loaded if present, saved after every unit; "+
		"v1 single-engine and v2 per-shard formats both load at any -shards value)")
	flag.IntVar(&opt.shards, "shards", runtime.GOMAXPROCS(0), "engine shards ingesting and cubing in parallel; 1 = single-threaded engine")
	flag.StringVar(&opt.listen, "listen", "", "serve the HTTP/JSON query API on this address (e.g. :8080); empty disables")
	flag.StringVar(&opt.ingestListen, "ingest-listen", "", "accept the record stream on this TCP address instead of stdin "+
		"(same auto-negotiated text/binary formats; connections are consumed one at a time until a signal)")
	flag.StringVar(&opt.nodeID, "node-id", "", "operator-assigned node identity reported on /v1/info (cluster deployments)")
	flag.StringVar(&opt.tilt, "tilt", "", "tilted multi-granularity trend history: 'calendar' (4 quarters/24 hours/31 days/12 months of units), "+
		"'log<N>x<S>' (N doubling levels of S slots), or 'name:multiple:slots,...' finest first; empty keeps the flat per-o-cell history")
	flag.StringVar(&opt.walDir, "wal-dir", "", "write-ahead record log directory (created if absent); every record is logged before ingest, "+
		"and on restart the log replays past the checkpoint's watermark to rebuild the open unit exactly")
	flag.StringVar(&opt.walSync, "wal-sync", "batch", "WAL fsync policy: 'batch' (every append), 'interval[=dur]' (at most once per period, default 100ms), "+
		"or 'off' (only before checkpoints)")
	flag.Int64Var(&opt.walSegBytes, "wal-segment-bytes", 0, "rotate WAL segments at this size (0 = 64 MiB default)")
	flag.Float64Var(&opt.alertWarn, "alert-warn", 0, "|slope| warn threshold for the alert lifecycle (0 = half of -alert-crit)")
	flag.Float64Var(&opt.alertCrit, "alert-crit", 0, "|slope| crit threshold; > 0 enables the stateful alert lifecycle "+
		"(level-transition events with per-cell dedup, hold-based flap suppression, and ancestor inhibition)")
	flag.IntVar(&opt.alertHold, "alert-hold", 2, "units a cell must stay below its reported level before a de-escalation event fires")
	flag.StringVar(&opt.alertWebhook, "alert-webhook", "", "POST every alert event to this URL as JSON, with capped exponential retries; "+
		"empty disables the webhook handler")
	flag.Float64Var(&opt.fcastThresh, "forecast-threshold", 0, "measure value forecasts extrapolate toward: the default ?threshold= of "+
		"/v1/forecast and, with -forecast-horizon, the trigger of the predictive 'forecast' alert topic (cells forecast to reach it "+
		"within the horizon go critical); 0 disables both")
	flag.Int64Var(&opt.fcastHorizon, "forecast-horizon", 60, "forecast horizon in ticks: the default ?horizon= of /v1/forecast and the "+
		"predictive alert budget")
	flag.Float64Var(&opt.changeScore, "change-score", 0.25, "default minimum slope-divergence score of /v1/changes, in [0,1]")
	flag.Parse()

	// A signal stops the record loop; the ordered shutdown — drain, HTTP,
	// flush, checkpoint, alert drain — then runs on the ordinary exit path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}

// run maps the flag set onto the node runtime config. Tests drive it
// directly with fabricated options and in-memory streams.
func run(ctx context.Context, opt options, in io.Reader, out io.Writer) error {
	return node.Run(ctx, node.Config{
		Engine: node.EngineConfig{
			Spec:         opt.spec,
			TicksPerUnit: opt.unit,
			Threshold:    opt.threshold,
			Alg:          opt.alg,
			Tilt:         opt.tilt,
			Shards:       opt.shards,
		},
		Checkpoint:        opt.checkpoint,
		Listen:            opt.listen,
		IngestListen:      opt.ingestListen,
		NodeID:            opt.nodeID,
		WALDir:            opt.walDir,
		WALSync:           opt.walSync,
		WALSegBytes:       opt.walSegBytes,
		AlertWarn:         opt.alertWarn,
		AlertCrit:         opt.alertCrit,
		AlertHold:         opt.alertHold,
		AlertWebhook:      opt.alertWebhook,
		ForecastThreshold: opt.fcastThresh,
		ForecastHorizon:   opt.fcastHorizon,
		ChangeScore:       opt.changeScore,
	}, in, out)
}

// parseTiltLevels parses the -tilt flag syntax (kept here as a named
// seam for the flag-parsing tests; the grammar lives in internal/tilt).
func parseTiltLevels(s string) ([]tilt.Level, error) {
	return tilt.ParseLevels(s)
}
