// Command streamd runs the online analyzer (§4.5) over a CSV record
// stream from stdin and prints o-layer alerts with their exception
// drill-down as units complete. It checkpoints its state so a restart
// resumes mid-unit without data loss.
//
// With -shards N > 1 the analyzer hash-partitions m-layer cells by their
// o-layer ancestors across N per-shard engines that ingest and cube in
// parallel (see stream.ShardedEngine); the merged output is identical to
// a single engine's, with alerts deterministically sorted. The default is
// GOMAXPROCS; -shards 1 runs the plain single-threaded engine.
//
// Checkpoint files are versioned: a single engine writes version 1 (one
// checkpoint), a sharded engine writes version 2 (one checkpoint per
// shard). Either version loads regardless of the current -shards value —
// v1 files repartition across the shards, v2 files merge back into a
// single engine — so the shard count can change freely between restarts.
//
// Record format (no header): tick,dim0,...,dimN,value
//
// Usage:
//
//	datagen-style producer | streamd -spec D2L2C4 -unit 15 -threshold 2
//	streamd -spec D2L2C4 -unit 15 -threshold 2 -checkpoint state.json < records.csv
//	streamd -spec D2L2C4 -shards 8 -checkpoint state.json < records.csv
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/stream"
)

func main() {
	specStr := flag.String("spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); "+
		"the o-layer sits at level 1 per dimension, bounding -shards parallelism by fanout^dims o-cells")
	unit := flag.Int("unit", 15, "ticks per finest tilt-frame unit")
	threshold := flag.Float64("threshold", 1, "slope exception threshold")
	algName := flag.String("alg", "mo", "cubing algorithm: mo | popular-path")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (loaded if present, saved after every unit; "+
		"v1 single-engine and v2 per-shard formats both load at any -shards value)")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "engine shards ingesting and cubing in parallel; 1 = single-threaded engine")
	flag.Parse()

	if err := run(*specStr, *unit, *threshold, *algName, *checkpoint, *shards, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}

// engine is the surface shared by the single and sharded analyzers.
type engine interface {
	Ingest(members []int32, tick int64, value float64) ([]*stream.UnitResult, error)
	Flush() (*stream.UnitResult, error)
	Unit() int64
	UnitsDone() int64
}

func run(specStr string, unit int, threshold float64, algName, checkpointPath string, shards int, in io.Reader, out io.Writer) error {
	spec, err := gen.ParseSpec(specStr + "T1") // reuse the D/L/C parser
	if err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	dims := make([]cube.Dimension, spec.Dims)
	for d := 0; d < spec.Dims; d++ {
		name := fmt.Sprintf("D%d", d)
		h, err := cube.NewFanoutHierarchy(name, spec.Fanout, spec.Levels)
		if err != nil {
			return err
		}
		dims[d] = cube.Dimension{Name: name, Hierarchy: h, MLevel: spec.Levels, OLevel: 1}
	}
	schema, err := cube.NewSchema(dims...)
	if err != nil {
		return err
	}
	alg := stream.MOCubing
	if algName == "popular-path" {
		alg = stream.PopularPath
	} else if algName != "mo" {
		return fmt.Errorf("unknown -alg %q", algName)
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", shards)
	}
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: unit,
		Threshold:    exception.Global(threshold),
		Algorithm:    alg,
	}

	// The two engine flavors differ only in construction and checkpoint
	// plumbing; the record loop runs against the shared interface.
	var eng engine
	var loadCheckpoint func(io.Reader) error
	var writeCheckpoint func(io.Writer) error
	if shards > 1 {
		seng, err := stream.NewShardedEngine(cfg, shards)
		if err != nil {
			return err
		}
		defer seng.Close()
		eng = seng
		loadCheckpoint = func(r io.Reader) error {
			scp, err := persist.ReadShardedCheckpoint(r)
			if err != nil {
				return err
			}
			return seng.Restore(scp)
		}
		writeCheckpoint = func(w io.Writer) error {
			scp, err := seng.Checkpoint()
			if err != nil {
				return err
			}
			return persist.WriteShardedCheckpoint(w, scp)
		}
	} else {
		single, err := stream.NewEngine(cfg)
		if err != nil {
			return err
		}
		eng = single
		loadCheckpoint = func(r io.Reader) error {
			cp, err := persist.ReadCheckpoint(r)
			if err != nil {
				return err
			}
			return single.Restore(cp)
		}
		writeCheckpoint = func(w io.Writer) error {
			return persist.WriteCheckpoint(w, single.Checkpoint())
		}
	}

	if checkpointPath != "" {
		if f, err := os.Open(checkpointPath); err == nil {
			err := loadCheckpoint(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			fmt.Fprintf(out, "# resumed at unit %d (%d units done)\n", eng.Unit(), eng.UnitsDone())
		}
	}

	saveCheckpoint := func() error {
		if checkpointPath == "" {
			return nil
		}
		tmp := checkpointPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := writeCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, checkpointPath)
	}

	report := func(urs []*stream.UnitResult) {
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
				for _, c := range al.Drill {
					fmt.Fprintf(out, "    supporter %s %s slope=%+.3f\n",
						c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
				}
			}
		}
	}

	cr := csv.NewReader(bufio.NewReader(in))
	cr.FieldsPerRecord = spec.Dims + 2
	var records int64
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("record %d: %w", records+1, err)
		}
		tick, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return fmt.Errorf("record %d tick: %w", records+1, err)
		}
		members := make([]int32, spec.Dims)
		for d := 0; d < spec.Dims; d++ {
			v, err := strconv.ParseInt(row[1+d], 10, 32)
			if err != nil {
				return fmt.Errorf("record %d dim %d: %w", records+1, d, err)
			}
			members[d] = int32(v)
		}
		value, err := strconv.ParseFloat(row[spec.Dims+1], 64)
		if err != nil {
			return fmt.Errorf("record %d value: %w", records+1, err)
		}
		closed, ingestErr := eng.Ingest(members, tick, value)
		// Units can close even when the record itself is rejected (the
		// boundary crossing happens first); report and checkpoint them
		// before surfacing the error, or their state would be lost.
		if len(closed) > 0 {
			report(closed)
			if err := saveCheckpoint(); err != nil {
				return fmt.Errorf("saving checkpoint: %w", err)
			}
		}
		if ingestErr != nil {
			return fmt.Errorf("record %d: %w", records+1, ingestErr)
		}
		records++
	}
	// Final partial unit.
	ur, err := eng.Flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	if err := saveCheckpoint(); err != nil {
		return fmt.Errorf("saving checkpoint: %w", err)
	}
	fmt.Fprintf(out, "# %d records, %d units\n", records, eng.UnitsDone())
	return nil
}
