// Command streamd runs the online analyzer (§4.5) over a record stream
// from stdin and prints o-layer alerts with their exception drill-down as
// units complete. It checkpoints its state so a restart resumes mid-unit
// without data loss.
//
// The input format is auto-detected: a stream opening with the
// "RGCWIRE1" magic is the binary columnar wire format (length-prefixed
// CRC32C frames carrying record batches, see internal/wire and DESIGN.md
// §11), decoded with zero per-record allocation; anything else is the
// text format below. `datagen -stream -format=binary | streamd` is the
// fast path — the sharded router partitions whole batches with one
// ancestor-table pass per dimension.
//
// With -shards N > 1 the analyzer hash-partitions m-layer cells by their
// o-layer ancestors across N per-shard engines that ingest and cube in
// parallel (see stream.ShardedEngine); the merged output is identical to
// a single engine's, with alerts deterministically sorted. The default is
// GOMAXPROCS; -shards 1 runs the plain single-threaded engine.
//
// With -listen ADDR streamd also serves the HTTP/JSON query API
// (internal/serve) from per-unit engine snapshots, so analysts can hit
// /v1/exceptions, /v1/trend, etc. while ingestion continues at full rate.
//
// On SIGINT/SIGTERM streamd stops reading, ingests every record it has
// already parsed, flushes the final partial unit, saves the checkpoint,
// and shuts the HTTP listener down gracefully before exiting 0. (Bytes
// the CSV reader buffered but had not yet parsed are abandoned, as with
// any streaming shutdown.)
//
// With -tilt the flat per-o-cell trend history is replaced by a tilt time
// frame (§4.1): each closed unit promotes through a level chain (e.g.
// quarter → hour → day → month), so /v1/trend?level= and /v1/frame reach
// far into the past at coarser granularity while per-cell state stays
// bounded by the chain's slot capacity.
//
// With -wal-dir streamd appends every record to a segmented, CRC32C-framed
// write-ahead log before ingesting it (see internal/wal). Checkpoints then
// carry the log watermark, and a restart — graceful or kill -9 — replays
// the durable records past the watermark to rebuild the open unit exactly;
// -wal-sync picks the fsync policy (batch / interval[=dur] / off). The
// same log feeds `regcube replay` for what-if reprocessing under a
// different shard count, tilt chain, or threshold.
//
// Checkpoint files are versioned: a single engine writes version 1 (one
// checkpoint), a sharded engine writes version 2 (one checkpoint per
// shard), and -tilt engines write version 3 (either layout plus the
// per-o-cell frames). Any version loads regardless of the current -shards
// or -tilt value — v1 files repartition across the shards, v2 files merge
// back into a single engine, pre-tilt files reseed frames from their flat
// history, and v3 files load into flat engines through the derived
// finest-level history — so both knobs can change freely between restarts.
//
// Text record format (no header): tick,dim0,...,dimN,value
//
// Usage:
//
//	datagen-style producer | streamd -spec D2L2C4 -unit 15 -threshold 2
//	streamd -spec D2L2C4 -unit 15 -threshold 2 -checkpoint state.json < records.csv
//	streamd -spec D2L2C4 -shards 8 -listen :8080 -checkpoint state.json < records.csv
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/query"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/wal"
	"repro/internal/wire"
)

// textBatchRecords is how many text records accumulate into one columnar
// batch before hand-off to the ingest loop. The reader also cuts a batch
// whenever its buffer runs dry, so a paced producer's records are never
// held back waiting for a full batch.
const textBatchRecords = 512

// options collects the flag values so tests drive run directly.
type options struct {
	spec         string
	unit         int
	threshold    float64
	alg          string
	checkpoint   string
	shards       int
	listen       string
	ingestListen string
	nodeID       string
	tilt         string
	walDir       string
	walSync      string
	walSegBytes  int64
}

func main() {
	var opt options
	flag.StringVar(&opt.spec, "spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); "+
		"the o-layer sits at level 1 per dimension, bounding -shards parallelism by fanout^dims o-cells")
	flag.IntVar(&opt.unit, "unit", 15, "ticks per finest tilt-frame unit")
	flag.Float64Var(&opt.threshold, "threshold", 1, "slope exception threshold")
	flag.StringVar(&opt.alg, "alg", "mo", "cubing algorithm: mo | popular-path")
	flag.StringVar(&opt.checkpoint, "checkpoint", "", "checkpoint file (loaded if present, saved after every unit; "+
		"v1 single-engine and v2 per-shard formats both load at any -shards value)")
	flag.IntVar(&opt.shards, "shards", runtime.GOMAXPROCS(0), "engine shards ingesting and cubing in parallel; 1 = single-threaded engine")
	flag.StringVar(&opt.listen, "listen", "", "serve the HTTP/JSON query API on this address (e.g. :8080); empty disables")
	flag.StringVar(&opt.ingestListen, "ingest-listen", "", "accept the record stream on this TCP address instead of stdin "+
		"(same auto-negotiated text/binary formats; connections are consumed one at a time until a signal)")
	flag.StringVar(&opt.nodeID, "node-id", "", "operator-assigned node identity reported on /v1/info (cluster deployments)")
	flag.StringVar(&opt.tilt, "tilt", "", "tilted multi-granularity trend history: 'calendar' (4 quarters/24 hours/31 days/12 months of units), "+
		"'log<N>x<S>' (N doubling levels of S slots), or 'name:multiple:slots,...' finest first; empty keeps the flat per-o-cell history")
	flag.StringVar(&opt.walDir, "wal-dir", "", "write-ahead record log directory (created if absent); every record is logged before ingest, "+
		"and on restart the log replays past the checkpoint's watermark to rebuild the open unit exactly")
	flag.StringVar(&opt.walSync, "wal-sync", "batch", "WAL fsync policy: 'batch' (every append), 'interval[=dur]' (at most once per period, default 100ms), "+
		"or 'off' (only before checkpoints)")
	flag.Int64Var(&opt.walSegBytes, "wal-segment-bytes", 0, "rotate WAL segments at this size (0 = 64 MiB default)")
	flag.Parse()

	// A signal stops the record loop; the final flush, checkpoint, and
	// HTTP shutdown then run on the ordinary exit path.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}

// engine is the surface shared by the single and sharded analyzers.
// Batches are the unit of flow on the ingest path; Ingest remains for WAL
// replay, which walks the row-oriented log record by record, and
// AdvanceTo applies the cluster router's unit-boundary barrier frames.
type engine interface {
	Ingest(members []int32, tick int64, value float64) ([]*stream.UnitResult, error)
	IngestBatch(b *wire.Batch) ([]*stream.UnitResult, error)
	AdvanceTo(unit int64) ([]*stream.UnitResult, error)
	Flush() (*stream.UnitResult, error)
	Unit() int64
	UnitsDone() int64
	Snapshot() *stream.Snapshot
}

// ingestMsg is one message from the reader goroutine to the ingest loop:
// a decoded record batch, or an advance barrier (a control frame telling
// the engine to close every unit before advance).
type ingestMsg struct {
	batch   *wire.Batch
	advance int64
	isCtrl  bool
}

func run(ctx context.Context, opt options, in io.Reader, out io.Writer) error {
	spec, err := gen.ParseSpec(opt.spec + "T1") // reuse the D/L/C parser
	if err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	schema, err := spec.StreamSchema()
	if err != nil {
		return err
	}
	alg := stream.MOCubing
	if opt.alg == "popular-path" {
		alg = stream.PopularPath
	} else if opt.alg != "mo" {
		return fmt.Errorf("unknown -alg %q", opt.alg)
	}
	if opt.shards < 1 {
		return fmt.Errorf("-shards %d: need at least 1", opt.shards)
	}
	tiltLevels, err := parseTiltLevels(opt.tilt)
	if err != nil {
		return fmt.Errorf("bad -tilt: %w", err)
	}
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: opt.unit,
		Threshold:    exception.Global(opt.threshold),
		Algorithm:    alg,
		TiltLevels:   tiltLevels,
		// The serving layer reads immutable per-unit snapshots.
		PublishSnapshots: opt.listen != "",
	}

	// The two engine flavors differ only in construction and checkpoint
	// plumbing; the record loop runs against the shared interface.
	var eng engine
	var loadCheckpoint func(io.Reader) error
	var writeCheckpoint func(io.Writer) error
	var setWALSeq func(int64) error
	var walSeqOf func() (int64, error)
	if opt.shards > 1 {
		seng, err := stream.NewShardedEngine(cfg, opt.shards)
		if err != nil {
			return err
		}
		defer seng.Close()
		eng = seng
		loadCheckpoint = func(r io.Reader) error {
			scp, err := persist.ReadShardedCheckpoint(r)
			if err != nil {
				return err
			}
			return seng.Restore(scp)
		}
		writeCheckpoint = func(w io.Writer) error {
			scp, err := seng.Checkpoint()
			if err != nil {
				return err
			}
			return persist.WriteShardedCheckpoint(w, scp)
		}
		setWALSeq = seng.SetWALSeq
		walSeqOf = seng.WALSeq
	} else {
		single, err := stream.NewEngine(cfg)
		if err != nil {
			return err
		}
		eng = single
		loadCheckpoint = func(r io.Reader) error {
			cp, err := persist.ReadCheckpoint(r)
			if err != nil {
				return err
			}
			return single.Restore(cp)
		}
		writeCheckpoint = func(w io.Writer) error {
			return persist.WriteCheckpoint(w, single.Checkpoint())
		}
		setWALSeq = func(seq int64) error { single.SetWALSeq(seq); return nil }
		walSeqOf = func() (int64, error) { return single.WALSeq(), nil }
	}

	if opt.checkpoint != "" {
		if f, err := os.Open(opt.checkpoint); err == nil {
			err := loadCheckpoint(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			fmt.Fprintf(out, "# resumed at unit %d (%d units done)\n", eng.Unit(), eng.UnitsDone())
		}
	}

	report := func(urs []*stream.UnitResult) {
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
				for _, c := range al.Drill {
					fmt.Fprintf(out, "    supporter %s %s slope=%+.3f\n",
						c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
				}
			}
		}
	}

	// WAL plumbing. Every batch is appended to the log before ingest;
	// ingestedSeq counts records the engine has consumed, and is the
	// watermark checkpoints carry. saveCheckpoint fsyncs the log before
	// stamping it, so a checkpoint's watermark never points past the
	// durable log regardless of the -wal-sync policy. The counter is
	// atomic because /v1/info reports it from HTTP goroutines while the
	// ingest loop advances it.
	var wlog *wal.Log
	var ingestedSeq atomic.Int64

	saveCheckpoint := func() error {
		if wlog != nil {
			if err := wlog.Sync(); err != nil {
				return fmt.Errorf("wal sync: %w", err)
			}
			if err := setWALSeq(ingestedSeq.Load()); err != nil {
				return err
			}
		}
		if opt.checkpoint == "" {
			return nil
		}
		tmp := opt.checkpoint + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := writeCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, opt.checkpoint)
	}

	if opt.walDir != "" {
		policy, every, err := wal.ParseSyncPolicy(opt.walSync)
		if err != nil {
			return fmt.Errorf("bad -wal-sync: %w", err)
		}
		wlog, err = wal.Open(wal.Options{
			Dir:          opt.walDir,
			SegmentBytes: opt.walSegBytes,
			Sync:         policy,
			SyncEvery:    every,
		})
		if err != nil {
			return fmt.Errorf("-wal-dir: %w", err)
		}
		defer wlog.Close()
		mark, err := walSeqOf()
		if err != nil {
			return err
		}
		if wlog.Seq() < mark {
			return fmt.Errorf("checkpoint WAL watermark %d exceeds the %d-record log in %s (wrong -wal-dir?)",
				mark, wlog.Seq(), opt.walDir)
		}
		ingestedSeq.Store(mark)
		if wlog.Seq() > mark {
			// The crash window: records durably logged after the last
			// checkpoint was cut. Re-ingesting them rebuilds the open unit
			// exactly — ingest is deterministic — and may close units whose
			// reports were lost with the crashed process.
			n, err := wal.Replay(opt.walDir, mark, func(seq int64, rec wal.Record) error {
				closed, ingestErr := eng.Ingest(rec.Members, rec.Tick, rec.Value)
				if len(closed) > 0 {
					report(closed)
				}
				if ingestErr != nil {
					return fmt.Errorf("wal record %d: %w", seq, ingestErr)
				}
				ingestedSeq.Add(1)
				return nil
			})
			if err != nil {
				return fmt.Errorf("replaying wal: %w", err)
			}
			fmt.Fprintf(out, "# wal: replayed %d records (watermark %d -> %d)\n", n-mark, mark, n)
			if err := saveCheckpoint(); err != nil {
				return fmt.Errorf("saving checkpoint: %w", err)
			}
		}
	}

	// ingestStats counts the decode edge (records, frames, decode errors
	// per format); /metrics renders it when the query API is up.
	ingestStats := &wire.IngestStats{}

	// The query API serves concurrently with the ingest loop below; its
	// only contact with the engine is the atomic snapshot load.
	var srv *http.Server
	if opt.listen != "" {
		ln, err := net.Listen("tcp", opt.listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		// The timeouts keep slow or stuck clients from pinning connections
		// (and Shutdown) on a daemon that runs for days: headers within 5s,
		// the whole request — including a POST /v1/query body — within 30s,
		// idle keep-alives reaped after 2 minutes, headers capped at 64 KiB
		// (the serving layer separately caps query bodies at 1 MiB).
		handler := serve.New(eng, schema)
		handler.SetIngestStats(ingestStats)
		// The info closure runs on query goroutines: only flag-derived
		// constants and the atomic watermark — never engine calls, which
		// are coordinator-confined.
		handler.SetInfo(func() query.InfoResponse {
			return query.InfoResponse{
				NodeID:      opt.nodeID,
				Role:        "node",
				Shards:      opt.shards,
				WireVersion: wire.Version,
				APIVersion:  query.APIVersion,
				WALSeq:      ingestedSeq.Load(),
			}
		})
		srv = &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			IdleTimeout:       2 * time.Minute,
			MaxHeaderBytes:    1 << 16,
		}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "streamd: http: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "# serving http on %s\n", ln.Addr())
		defer func() {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutdownCtx); err != nil {
				fmt.Fprintf(os.Stderr, "streamd: http shutdown: %v\n", err)
			}
		}()
	}

	// Records are decoded in their own goroutine so a signal interrupts the
	// loop even while a read from stdin is blocked; the reader goroutine
	// itself dies with the process. Decoded batches flow over a channel and
	// drained batches flow back through the free list, so steady-state
	// ingest allocates nothing per record in either direction.
	// A shallow decode-ahead keeps the reader from racing the whole stream
	// into fresh batches before any come back through the free list — two
	// full frames in flight is plenty of pipeline slack, and steady state
	// then recycles the same handful of batches instead of allocating.
	msgs := make(chan ingestMsg, 2)
	freeBatches := make(chan *wire.Batch, 16)
	readErr := make(chan error, 1)
	getBatch := func() *wire.Batch {
		b := &wire.Batch{}
		select {
		case b = <-freeBatches:
		default:
		}
		b.Reset(spec.Dims)
		return b
	}
	if opt.ingestListen != "" {
		// Routed ingest: accept the record stream over TCP instead of
		// stdin. The listener opens before the announce line, so a router
		// that waits for it can connect immediately; connections are
		// consumed one at a time (the engine is one logical stream), and a
		// connection's decode error drops that connection — the next
		// producer reconnects — instead of killing the node.
		ingestLn, err := net.Listen("tcp", opt.ingestListen)
		if err != nil {
			return fmt.Errorf("-ingest-listen: %w", err)
		}
		fmt.Fprintf(out, "# ingest listening on %s\n", ingestLn.Addr())
		go func() {
			defer close(msgs)
			serveIngest(ctx, ingestLn, spec.Dims, getBatch, msgs, ingestStats)
		}()
	} else {
		go func() {
			defer close(msgs)
			br := bufio.NewReaderSize(in, 1<<16)
			// Format negotiation: the wire magic's first byte can never open a
			// text record, so peeking the magic length decides the decoder. A
			// stream shorter than the magic falls through to the text parser.
			peek, _ := br.Peek(len(wire.Magic))
			var err error
			if string(peek) == wire.Magic {
				err = readBinary(ctx, br, spec.Dims, getBatch, msgs, ingestStats, wire.SourceStdin)
			} else {
				err = readText(ctx, br, spec.Dims, getBatch, msgs, ingestStats, wire.SourceStdin)
			}
			if err != nil {
				readErr <- err
			}
		}()
	}

	var records int64
	ingest := func(m ingestMsg) error {
		if m.isCtrl {
			// A router barrier: close every unit before the target, even
			// when this node received no records for some of them — the
			// cluster-wide analogue of the boundary crossing a single
			// engine sees in the record stream. Barriers are not
			// WAL-logged; the checkpoint cut after the closed units is
			// what makes their effect durable.
			closed, err := eng.AdvanceTo(m.advance)
			if len(closed) > 0 {
				report(closed)
			}
			if err != nil {
				return fmt.Errorf("advance to unit %d: %w", m.advance, err)
			}
			if len(closed) > 0 {
				if err := saveCheckpoint(); err != nil {
					return fmt.Errorf("saving checkpoint: %w", err)
				}
			}
			return nil
		}
		b := m.batch
		if wlog != nil {
			// Write-ahead: the whole batch reaches the log (one frame;
			// durable per the sync policy) before the engine sees it.
			if err := wlog.AppendColumnar(b); err != nil {
				return fmt.Errorf("wal append: %w", err)
			}
		}
		closed, ingestErr := eng.IngestBatch(b)
		if ingestErr == nil {
			ingestedSeq.Add(int64(b.Len()))
			records += int64(b.Len())
		}
		// Units can close even when a record is rejected (boundary
		// crossings happen first); report them before surfacing the error,
		// or their output would be lost. The checkpoint is only cut after
		// fully ingested batches, so its watermark is always exact.
		if len(closed) > 0 {
			report(closed)
			if ingestErr == nil {
				if err := saveCheckpoint(); err != nil {
					return fmt.Errorf("saving checkpoint: %w", err)
				}
			}
		}
		if ingestErr != nil {
			return fmt.Errorf("record %d: %w", records+1, ingestErr)
		}
		select {
		case freeBatches <- b:
		default:
		}
		return nil
	}
loop:
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(out, "# signal: flushing final unit")
			// Ingest every batch the reader already decoded before
			// flushing. The timed case (instead of a non-blocking default)
			// gives the reader a grace window to deliver a batch it cut
			// just before the signal; it fires only once, when the reader
			// has stopped or is still blocked reading stdin.
		drain:
			for {
				select {
				case m, ok := <-msgs:
					if !ok {
						break drain
					}
					if err := ingest(m); err != nil {
						return err
					}
				case <-time.After(100 * time.Millisecond):
					break drain
				}
			}
			break loop
		case m, ok := <-msgs:
			if !ok {
				break loop
			}
			if err := ingest(m); err != nil {
				return err
			}
		}
	}
	// Whichever way the loop ended, a parse error the reader hit must
	// still fail the run — corrupt input never exits 0. readErr is
	// buffered, so the reader's send completes the instant it hits the
	// error; the drain's grace window above has already let it land.
	select {
	case err := <-readErr:
		return err
	default:
	}
	// Final partial unit.
	ur, err := eng.Flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	if err := saveCheckpoint(); err != nil {
		return fmt.Errorf("saving checkpoint: %w", err)
	}
	fmt.Fprintf(out, "# %d records, %d units\n", records, eng.UnitsDone())
	return nil
}

// parseTiltLevels decodes the -tilt flag; the syntax lives in
// tilt.ParseLevels, shared with regcube replay.
func parseTiltLevels(s string) ([]tilt.Level, error) {
	return tilt.ParseLevels(s)
}

// serveIngest accepts record-stream connections until the signal closes
// the listener, feeding each one through the auto-negotiated decoder. The
// engine is one logical stream, so connections are consumed sequentially;
// a connection that dies or delivers corrupt bytes is logged and dropped
// (its decoded batches stand — the router re-routes from its own stream
// position), never fatal to the node.
func serveIngest(ctx context.Context, ln net.Listener, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return
			}
			fmt.Fprintf(os.Stderr, "streamd: ingest accept: %v\n", err)
			continue
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		peek, _ := br.Peek(len(wire.Magic))
		if string(peek) == wire.Magic {
			err = readBinary(ctx, br, dims, getBatch, msgs, stats, wire.SourceTCP)
		} else {
			err = readText(ctx, br, dims, getBatch, msgs, stats, wire.SourceTCP)
		}
		conn.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "streamd: ingest connection: %v\n", err)
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// readBinary decodes framed columnar batches (internal/wire) into the
// message channel until EOF, a decode error, or the signal. Frames decode
// straight into recycled Batch storage — no per-record allocation — and
// control frames (the router's unit barriers) pass through as advance
// messages in stream order.
func readBinary(ctx context.Context, br *bufio.Reader, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats, src wire.Source) error {
	wr, err := wire.NewReader(br)
	if err != nil {
		stats.AddDecodeError(wire.FormatBinary, src)
		return fmt.Errorf("binary stream: %w", err)
	}
	if wr.Dims() != dims {
		stats.AddDecodeError(wire.FormatBinary, src)
		return fmt.Errorf("binary stream carries %d dimensions, -spec has %d", wr.Dims(), dims)
	}
	for {
		// Stop decoding once the signal fires — the unconditional send
		// below still delivers the batch in flight, so shutdown drains a
		// bounded backlog instead of racing a fast producer.
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		b := getBatch()
		n, ctrl, isCtrl, err := wr.NextAny(b)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			stats.AddDecodeError(wire.FormatBinary, src)
			return fmt.Errorf("binary stream: %w", err)
		}
		stats.AddFrame(wire.FormatBinary, src)
		if isCtrl {
			msgs <- ingestMsg{advance: ctrl.Unit, isCtrl: true}
			continue
		}
		stats.AddRecords(wire.FormatBinary, src, n)
		msgs <- ingestMsg{batch: b}
	}
}

// readText parses text records (tick,dim0,...,dimN,value) into columnar
// batches, cutting a batch at textBatchRecords or whenever the buffer runs
// dry — a paced producer's records are delivered as they arrive, a bulk
// pipe is consumed in full batches.
func readText(ctx context.Context, br *bufio.Reader, dims int, getBatch func() *wire.Batch,
	msgs chan<- ingestMsg, stats *wire.IngestStats, src wire.Source) error {
	rr := gen.NewRecordReader(br, dims)
	b := getBatch()
	flush := func() {
		if b.Len() > 0 {
			stats.AddFrame(wire.FormatText, src)
			stats.AddRecords(wire.FormatText, src, b.Len())
			msgs <- ingestMsg{batch: b}
			b = getBatch()
		}
	}
	var n int64
	for {
		select {
		case <-ctx.Done():
			flush()
			return nil
		default:
		}
		tick, members, value, err := rr.Next()
		if err == io.EOF {
			flush()
			return nil
		}
		if err != nil {
			// Records decoded before the bad one are still delivered, then
			// the error fails the run.
			flush()
			stats.AddDecodeError(wire.FormatText, src)
			return fmt.Errorf("record %d: %w", n+1, err)
		}
		n++
		b.Append(tick, members, value)
		if b.Len() >= textBatchRecords || rr.Buffered() == 0 {
			flush()
		}
	}
}
