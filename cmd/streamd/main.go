// Command streamd runs the online analyzer (§4.5) over a CSV record
// stream from stdin and prints o-layer alerts with their exception
// drill-down as units complete. It checkpoints its state so a restart
// resumes mid-unit without data loss.
//
// Record format (no header): tick,dim0,...,dimN,value
//
// Usage:
//
//	datagen-style producer | streamd -spec D2L2C4 -unit 15 -threshold 2
//	streamd -spec D2L2C4 -unit 15 -threshold 2 -checkpoint state.json < records.csv
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/stream"
)

func main() {
	specStr := flag.String("spec", "D2L2C4", "schema spec: D<dims>L<levels>C<fanout> (no T component)")
	unit := flag.Int("unit", 15, "ticks per finest tilt-frame unit")
	threshold := flag.Float64("threshold", 1, "slope exception threshold")
	algName := flag.String("alg", "mo", "cubing algorithm: mo | popular-path")
	checkpoint := flag.String("checkpoint", "", "checkpoint file (loaded if present, saved after every unit)")
	flag.Parse()

	if err := run(*specStr, *unit, *threshold, *algName, *checkpoint, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "streamd: %v\n", err)
		os.Exit(1)
	}
}

func run(specStr string, unit int, threshold float64, algName, checkpointPath string, in io.Reader, out io.Writer) error {
	spec, err := gen.ParseSpec(specStr + "T1") // reuse the D/L/C parser
	if err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	dims := make([]cube.Dimension, spec.Dims)
	for d := 0; d < spec.Dims; d++ {
		name := fmt.Sprintf("D%d", d)
		h, err := cube.NewFanoutHierarchy(name, spec.Fanout, spec.Levels)
		if err != nil {
			return err
		}
		dims[d] = cube.Dimension{Name: name, Hierarchy: h, MLevel: spec.Levels, OLevel: 1}
	}
	schema, err := cube.NewSchema(dims...)
	if err != nil {
		return err
	}
	alg := stream.MOCubing
	if algName == "popular-path" {
		alg = stream.PopularPath
	} else if algName != "mo" {
		return fmt.Errorf("unknown -alg %q", algName)
	}
	eng, err := stream.NewEngine(stream.Config{
		Schema:       schema,
		TicksPerUnit: unit,
		Threshold:    exception.Global(threshold),
		Algorithm:    alg,
	})
	if err != nil {
		return err
	}
	if checkpointPath != "" {
		if f, err := os.Open(checkpointPath); err == nil {
			cp, err := persist.ReadCheckpoint(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading checkpoint: %w", err)
			}
			if err := eng.Restore(cp); err != nil {
				return fmt.Errorf("restoring checkpoint: %w", err)
			}
			fmt.Fprintf(out, "# resumed at unit %d (%d units done)\n", eng.Unit(), eng.UnitsDone())
		}
	}

	saveCheckpoint := func() error {
		if checkpointPath == "" {
			return nil
		}
		tmp := checkpointPath + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := persist.WriteCheckpoint(f, eng.Checkpoint()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, checkpointPath)
	}

	report := func(urs []*stream.UnitResult) {
		for _, ur := range urs {
			if ur.Result == nil {
				fmt.Fprintf(out, "[unit %d] no data\n", ur.Unit)
				continue
			}
			fmt.Fprintf(out, "[unit %d] %s: %d o-cells, %d exceptions, %d alerts\n",
				ur.Unit, ur.Result.Stats.Algorithm, len(ur.Result.OLayer),
				len(ur.Result.Exceptions), len(ur.Alerts))
			for _, al := range ur.Alerts {
				fmt.Fprintf(out, "  ALERT %s %s slope=%+.3f\n", al.Kind, al.Cell.Describe(schema), al.ISB.Slope)
				for _, c := range al.Drill {
					fmt.Fprintf(out, "    supporter %s %s slope=%+.3f\n",
						c.Key.Describe(schema), c.Key.Cuboid.Describe(schema), c.ISB.Slope)
				}
			}
		}
	}

	cr := csv.NewReader(bufio.NewReader(in))
	cr.FieldsPerRecord = spec.Dims + 2
	var records int64
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("record %d: %w", records+1, err)
		}
		tick, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return fmt.Errorf("record %d tick: %w", records+1, err)
		}
		members := make([]int32, spec.Dims)
		for d := 0; d < spec.Dims; d++ {
			v, err := strconv.ParseInt(row[1+d], 10, 32)
			if err != nil {
				return fmt.Errorf("record %d dim %d: %w", records+1, d, err)
			}
			members[d] = int32(v)
		}
		value, err := strconv.ParseFloat(row[spec.Dims+1], 64)
		if err != nil {
			return fmt.Errorf("record %d value: %w", records+1, err)
		}
		closed, err := eng.Ingest(members, tick, value)
		if err != nil {
			return fmt.Errorf("record %d: %w", records+1, err)
		}
		records++
		if len(closed) > 0 {
			report(closed)
			if err := saveCheckpoint(); err != nil {
				return fmt.Errorf("saving checkpoint: %w", err)
			}
		}
	}
	// Final partial unit.
	ur, err := eng.Flush()
	if err != nil {
		return err
	}
	report([]*stream.UnitResult{ur})
	if err := saveCheckpoint(); err != nil {
		return fmt.Errorf("saving checkpoint: %w", err)
	}
	fmt.Fprintf(out, "# %d records, %d units\n", records, eng.UnitsDone())
	return nil
}
