package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/persist"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/wal"
)

// TestCrashRecoveryBitwise is the crash-injection harness: a real streamd
// subprocess is kill -9'd mid-unit at randomized offsets while streaming
// with a WAL, restarted, and its recovered checkpoint compared bitwise
// against an uninterrupted engine run over the same durable record prefix.
// Ingest is deterministic, so the two must be identical at any shard
// count; the property is exercised at 1, 4, and 7 shards (7 also runs
// tilted, covering the v3 checkpoint path).
func TestCrashRecoveryBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness")
	}
	bin := filepath.Join(t.TempDir(), "streamd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building streamd: %v", err)
	}

	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("randomized kill offsets from seed %d", seed)

	const (
		specStr   = "D2L2C4"
		unitTicks = 15
		threshold = 0.3
	)
	var replayedTotal int64
	for _, tc := range []struct {
		shards int
		tilt   string
	}{{1, ""}, {4, ""}, {7, "log3x4"}} {
		for round := 0; round < 2; round++ {
			name := fmt.Sprintf("shards%d", tc.shards)
			if tc.tilt != "" {
				name += "-tilt"
			}
			t.Run(fmt.Sprintf("%s/kill%d", name, round), func(t *testing.T) {
				dir := t.TempDir()
				walDir := filepath.Join(dir, "wal")
				cpPath := filepath.Join(dir, "state.json")
				args := []string{
					"-spec", specStr, "-unit", fmt.Sprint(unitTicks),
					"-threshold", fmt.Sprint(threshold),
					"-shards", fmt.Sprint(tc.shards),
					"-wal-dir", walDir, "-wal-sync", "batch",
					"-checkpoint", cpPath,
				}
				if tc.tilt != "" {
					args = append(args, "-tilt", tc.tilt)
				}

				// Phase 1: stream paced records into streamd, then SIGKILL
				// it mid-unit at a randomized offset.
				cmd := exec.Command(bin, args...)
				stdin, err := cmd.StdinPipe()
				if err != nil {
					t.Fatal(err)
				}
				var out bytes.Buffer
				cmd.Stdout = &out
				cmd.Stderr = &out
				if err := cmd.Start(); err != nil {
					t.Fatal(err)
				}
				stop := make(chan struct{})
				go func() {
					defer stdin.Close()
					w := rand.New(rand.NewSource(int64(tc.shards)*100 + int64(round)))
					for tick := 0; ; tick++ {
						// A few cells per tick, distinct within the tick: the
						// engine allows one reading per cell per tick, and a
						// rejected record is already durable in the write-ahead
						// log, so replay would (correctly) refuse it — the
						// harness streams only records a live engine accepts,
						// like any valid producer.
						var drawn [3][2]int
						for i := 0; i < 3; i++ {
						draw:
							a, b := w.Intn(16), w.Intn(16)
							for j := 0; j < i; j++ {
								if drawn[j] == [2]int{a, b} {
									goto draw
								}
							}
							drawn[i] = [2]int{a, b}
							row := fmt.Sprintf("%d,%d,%d,%g\n", tick, a, b, w.NormFloat64()*5)
							if _, err := io.WriteString(stdin, row); err != nil {
								return // pipe died with the process
							}
						}
						select {
						case <-stop:
							return
						case <-time.After(200 * time.Microsecond):
						}
					}
				}()
				// Long enough to close units and cut checkpoints, random
				// enough to land anywhere within a unit.
				time.Sleep(time.Duration(30+rng.Intn(90)) * time.Millisecond)
				if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
					t.Fatal(err)
				}
				close(stop)
				err = cmd.Wait()
				if err == nil {
					t.Fatalf("streamd survived SIGKILL? output:\n%s", out.String())
				}

				// Phase 2: restart on the crashed state with no new input.
				// streamd replays the WAL past the checkpoint watermark,
				// flushes the rebuilt partial unit, and checkpoints.
				restart := exec.Command(bin, args...)
				restart.Stdin = nil // /dev/null
				var rout bytes.Buffer
				restart.Stdout = &rout
				restart.Stderr = &rout
				if err := restart.Run(); err != nil {
					t.Fatalf("restart failed: %v\n%s", err, rout.String())
				}
				got, err := os.ReadFile(cpPath)
				if err != nil {
					t.Fatalf("recovered checkpoint: %v", err)
				}

				// Phase 3: uninterrupted reference — a fresh engine fed the
				// durable record prefix straight from the WAL.
				recs := readWAL(t, walDir)
				replayedTotal += int64(len(recs))
				want := referenceCheckpoint(t, tc.shards, tc.tilt, unitTicks, threshold, recs)
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered checkpoint differs from uninterrupted run over %d durable records\nstream output:\n%s\nrestart output:\n%s",
						len(recs), out.String(), rout.String())
				}
				if strings.Contains(rout.String(), "# wal: replayed") {
					t.Logf("restart replayed a WAL suffix over %d durable records", len(recs))
				}
			})
		}
	}
	// The harness is only meaningful if some run actually had durable
	// records to recover; with batch fsync and ≥30ms of streaming this
	// never rounds to zero across six runs.
	if replayedTotal == 0 {
		t.Fatal("no run left any durable WAL records; the harness tested nothing")
	}
}

// readWAL returns every durable record in the log directory.
func readWAL(t *testing.T, dir string) []wal.Record {
	t.Helper()
	var recs []wal.Record
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil
	}
	_, err := wal.Replay(dir, 0, func(seq int64, r wal.Record) error {
		cp := r
		cp.Members = append([]int32(nil), r.Members...)
		recs = append(recs, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("reading WAL: %v", err)
	}
	return recs
}

// referenceCheckpoint runs a fresh engine over recs exactly as streamd
// would (ingest, final flush, watermark stamp) and serializes its
// checkpoint with the same persist envelope streamd writes.
func referenceCheckpoint(t *testing.T, shards int, tiltStr string, unitTicks int, threshold float64, recs []wal.Record) []byte {
	t.Helper()
	spec, err := gen.ParseSpec("D2L2C4T1")
	if err != nil {
		t.Fatal(err)
	}
	schema, err := spec.StreamSchema()
	if err != nil {
		t.Fatal(err)
	}
	tiltLevels, err := tilt.ParseLevels(tiltStr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: unitTicks,
		Threshold:    exception.Global(threshold),
		TiltLevels:   tiltLevels,
	}
	var buf bytes.Buffer
	if shards > 1 {
		seng, err := stream.NewShardedEngine(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer seng.Close()
		for _, r := range recs {
			if _, err := seng.Ingest(r.Members, r.Tick, r.Value); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := seng.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := seng.SetWALSeq(int64(len(recs))); err != nil {
			t.Fatal(err)
		}
		scp, err := seng.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if err := persist.WriteShardedCheckpoint(&buf, scp); err != nil {
			t.Fatal(err)
		}
	} else {
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if _, err := eng.Ingest(r.Members, r.Tick, r.Value); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
		eng.SetWALSeq(int64(len(recs)))
		if err := persist.WriteCheckpoint(&buf, eng.Checkpoint()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}
