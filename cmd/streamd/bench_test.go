package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/gen"
	"repro/internal/wire"
)

// benchSpec is the benchmark workload: a 16×16 m-layer grid — 256 cells
// per tick, every cell reporting on every tick.
const (
	benchSpec = "D2L2C4"
	benchDims = 2
	benchCard = 16
)

// benchStream synthesizes one deterministic record stream — every cell of
// the benchSpec m-layer reporting on every tick — in both encodings, so the
// text and binary benchmarks ingest identical records.
func benchStream(tb testing.TB, ticks int) (text, binary []byte, records int) {
	tb.Helper()
	var txt bytes.Buffer
	var bin bytes.Buffer
	bw, err := wire.NewWriter(&bin, benchDims)
	if err != nil {
		tb.Fatal(err)
	}
	var line []byte
	members := make([]int32, benchDims)
	for t := 0; t < ticks; t++ {
		for cell := int32(0); cell < benchCard*benchCard; cell++ {
			for d, m := 0, cell; d < benchDims; d, m = d+1, m/benchCard {
				members[d] = m % benchCard
			}
			v := float64(t)*0.25 + float64(cell)*0.125 - 3.0625
			line = gen.AppendStreamRecord(line[:0], int64(t), members, v)
			txt.Write(line)
			if err := bw.Append(int64(t), members, v); err != nil {
				tb.Fatal(err)
			}
			records++
		}
	}
	if err := bw.Flush(); err != nil {
		tb.Fatal(err)
	}
	return txt.Bytes(), bin.Bytes(), records
}

// BenchmarkIngest drives the full streamd pipeline — decode, route, shard
// ingest, unit cubing — from an in-memory stream in each encoding, at 1, 4,
// and 8 shards. One op is the whole stream; records/s is the headline
// ingest-throughput metric the PR trajectory tracks.
func BenchmarkIngest(b *testing.B) {
	text, binary, records := benchStream(b, 400)
	for _, enc := range []struct {
		name string
		data []byte
	}{{"text", text}, {"binary", binary}} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/shards%d", enc.name, shards), func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(int64(len(enc.data)))
				for i := 0; i < b.N; i++ {
					err := run(context.Background(), options{
						spec: benchSpec, unit: 50, threshold: 0.5, alg: "mo",
						shards: shards,
					}, bytes.NewReader(enc.data), io.Discard)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// BenchmarkDecode isolates the per-record decode cost of each encoding —
// no engine behind it — so the router benchmarks above can be read as
// decode plus routing. The binary decoder must stay O(1) allocations per
// batch regardless of batch count.
func BenchmarkDecode(b *testing.B) {
	text, binary, records := benchStream(b, 400)

	b.Run("text", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			rr := gen.NewRecordReader(bufio.NewReaderSize(bytes.NewReader(text), 1<<16), benchDims)
			n := 0
			for {
				_, _, _, err := rr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n++
			}
			if n != records {
				b.Fatalf("decoded %d records, want %d", n, records)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})

	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(binary)))
		var batch wire.Batch
		for i := 0; i < b.N; i++ {
			wr, err := wire.NewReader(bytes.NewReader(binary))
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				cnt, err := wr.Next(&batch)
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				n += cnt
			}
			if n != records {
				b.Fatalf("decoded %d records, want %d", n, records)
			}
		}
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
	})
}
