// Command queryprobe smoke-tests a running query server through the Go
// client SDK (repro/client): it waits for the server to start serving,
// issues one mixed POST /v1/query batch — several valid request kinds
// plus one deliberately invalid sub-request — and asserts every result
// comes back as the typed model promises. Exit status 0 means the whole
// v2 query path (client → batch endpoint → dispatcher → snapshot) works
// end to end; anything else prints the failure and exits 1.
//
// Usage:
//
//	queryprobe -addr http://127.0.0.1:8080 [-cell 0,0] [-timeout 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "comma-separated query server base URLs (first reachable wins)")
	cellStr := flag.String("cell", "0,0", "o-cell members for the supporters/frame probes")
	timeout := flag.Duration("timeout", 30*time.Second, "overall probe deadline")
	flag.Parse()

	if err := run(*addr, *cellStr, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "queryprobe: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("queryprobe: OK")
}

func run(addr, cellStr string, timeout time.Duration) error {
	members, err := parseMembers(cellStr)
	if err != nil {
		return fmt.Errorf("-cell: %w", err)
	}
	c, err := client.New(
		client.WithEndpoints(strings.Split(addr, ",")...),
		client.WithTimeout(5*time.Second),
		client.WithRetries(3),
		client.WithRetryBackoff(200*time.Millisecond))
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	// Wait until the server has a completed unit to answer from.
	for {
		h, err := c.Health(ctx)
		if err != nil {
			return fmt.Errorf("health: %w", err)
		}
		if h.Serving && h.UnitsDone > 0 {
			fmt.Printf("queryprobe: serving unit %d (%d done)\n", h.Unit, h.UnitsDone)
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server never served a completed unit: %w", ctx.Err())
		case <-time.After(200 * time.Millisecond):
		}
	}

	// One unit-consistent batch mixing five kinds with one deliberately
	// invalid sub-request. Frame data for a young cell can lag a unit on
	// tilted engines, so the loop tolerates transient not-found results.
	cell := client.OCell(members...)
	var reply *client.BatchReply
	for {
		reply, err = c.Batch(ctx,
			client.SummaryRequest{},
			client.ExceptionsRequest{K: 5},
			client.AlertsRequest{},
			client.FrameRequest{CellRef: cell},
			client.SliceRequest{Dim: 99, Member: 0}, // must fail typed
		)
		if err != nil {
			return fmt.Errorf("batch: %w", err)
		}
		if !transientNotFound(reply.Results[:4]) {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("batch results never settled: %w", ctx.Err())
		case <-time.After(200 * time.Millisecond):
		}
	}

	sum, ok := reply.Results[0].Response.(*client.SummaryResponse)
	if !ok || reply.Results[0].Err != nil {
		return fmt.Errorf("summary: %v", reply.Results[0].Err)
	}
	if sum.Unit != reply.Unit {
		return fmt.Errorf("summary unit %d != batch unit %d (batch not unit-consistent)", sum.Unit, reply.Unit)
	}
	exc, ok := reply.Results[1].Response.(*client.CellsResponse)
	if !ok || reply.Results[1].Err != nil {
		return fmt.Errorf("exceptions: %v", reply.Results[1].Err)
	}
	alerts, ok := reply.Results[2].Response.(*client.AlertsResponse)
	if !ok || reply.Results[2].Err != nil {
		return fmt.Errorf("alerts: %v", reply.Results[2].Err)
	}
	frame, ok := reply.Results[3].Response.(*client.FrameResponse)
	if !ok || reply.Results[3].Err != nil {
		return fmt.Errorf("frame: %v", reply.Results[3].Err)
	}
	if err := reply.Results[4].Err; !errors.Is(err, client.ErrInvalid) {
		return fmt.Errorf("invalid slice sub-request returned %v, want ErrInvalid", err)
	}
	fmt.Printf("queryprobe: unit %d: %d exceptions (top %d listed), %d alerts, frame %d levels (%d slots), bad sub-request rejected typed\n",
		reply.Unit, exc.Count, len(exc.Cells), len(alerts.Alerts), len(frame.Levels), frame.SlotsInUse)
	return nil
}

// transientNotFound reports whether any result failed with ErrNotFound —
// the one failure mode that resolves by itself as more units close.
func transientNotFound(results []client.Result) bool {
	for _, r := range results {
		if errors.Is(r.Err, client.ErrNotFound) {
			return true
		}
		if r.Err != nil {
			return false
		}
	}
	return false
}

func parseMembers(s string) ([]int32, error) {
	parts := strings.Split(s, ",")
	out := make([]int32, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil {
			return nil, err
		}
		out[i] = int32(v)
	}
	return out, nil
}
