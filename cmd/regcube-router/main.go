// Command regcube-router is the cluster's scatter tier and, optionally,
// its query coordinator. It reads the record stream on stdin — the same
// auto-negotiated text/binary formats streamd accepts — and hash-routes
// whole columnar batches to N streamd ingest nodes over TCP (RGCWIRE1
// frames), using byte-for-byte the partition function of the in-process
// sharded engine. At every unit boundary it flushes all per-node buffers
// and broadcasts an advance barrier so the nodes close units in
// lockstep.
//
// With -listen and -node-api it also runs the scatter-gather query
// coordinator: the full HTTP/JSON query API served from the nodes'
// merged snapshots, plus a cluster-wide /v1/info. The coordinator keeps
// serving after stdin ends, until a signal.
//
// Usage:
//
//	datagen -spec D2L2C4T10K -stream |
//	    regcube-router -spec D2L2C4 -unit 15 \
//	        -nodes 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103,127.0.0.1:9104 \
//	        -node-api http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083,http://127.0.0.1:8084 \
//	        -listen :8080
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/serve"
	"repro/internal/wire"
)

type options struct {
	spec         string
	unit         int
	nodes        string
	nodeAPI      string
	listen       string
	nodeID       string
	batch        int
	fcastThresh  float64
	fcastHorizon int64
	changeScore  float64
}

func main() {
	var opt options
	flag.StringVar(&opt.spec, "spec", "D2L2C4", "schema spec D<dims>L<levels>C<fanout> (no T component); must match the nodes' -spec")
	flag.IntVar(&opt.unit, "unit", 15, "ticks per unit; must match the nodes' -unit")
	flag.StringVar(&opt.nodes, "nodes", "", "comma-separated node ingest addresses (streamd -ingest-listen), in partition order")
	flag.StringVar(&opt.nodeAPI, "node-api", "", "comma-separated node query base URLs (streamd -listen), in the same order; "+
		"enables the coordinator when -listen is set")
	flag.StringVar(&opt.listen, "listen", "", "serve the coordinator HTTP/JSON query API on this address; requires -node-api")
	flag.StringVar(&opt.nodeID, "node-id", "", "coordinator identity reported on /v1/info")
	flag.IntVar(&opt.batch, "batch", 0, "per-node records per frame (default wire batch size)")
	flag.Float64Var(&opt.fcastThresh, "forecast-threshold", 0, "default ?threshold= of the coordinator's /v1/forecast; "+
		"0 leaves the shim with no default (should match the nodes' flag)")
	flag.Int64Var(&opt.fcastHorizon, "forecast-horizon", 60, "default ?horizon= of the coordinator's /v1/forecast")
	flag.Float64Var(&opt.changeScore, "change-score", 0.25, "default minimum ?score= of the coordinator's /v1/changes, in [0,1]")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, opt, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "regcube-router: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, opt options, in io.Reader, out io.Writer) error {
	spec, err := gen.ParseSpec(opt.spec + "T1") // reuse the D/L/C parser
	if err != nil {
		return fmt.Errorf("bad -spec: %w", err)
	}
	schema, err := spec.StreamSchema()
	if err != nil {
		return err
	}
	if opt.nodes == "" {
		return fmt.Errorf("-nodes is required")
	}
	nodes := strings.Split(opt.nodes, ",")
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Schema:       schema,
		Nodes:        nodes,
		TicksPerUnit: opt.unit,
		BatchRecords: opt.batch,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "regcube-router: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer router.Close()

	// Coordinator: the scatter-gather query tier over the nodes' APIs.
	var srv *http.Server
	serveErr := make(chan error, 1)
	if opt.listen != "" {
		if opt.nodeAPI == "" {
			return fmt.Errorf("-listen requires -node-api")
		}
		endpoints := strings.Split(opt.nodeAPI, ",")
		if len(endpoints) != len(nodes) {
			return fmt.Errorf("-node-api lists %d endpoints for %d nodes", len(endpoints), len(nodes))
		}
		gatherer, err := cluster.NewGatherer(cluster.GatherConfig{
			Schema:    schema,
			Endpoints: endpoints,
			NodeID:    opt.nodeID,
		})
		if err != nil {
			return err
		}
		coord := serve.New(gatherer, schema)
		coord.SetInfo(gatherer.Info)
		fdef := serve.ForecastDefaults{Horizon: opt.fcastHorizon, ChangeScore: opt.changeScore}
		if opt.fcastThresh != 0 {
			th := opt.fcastThresh
			fdef.Threshold = &th
		}
		coord.SetForecastDefaults(fdef)
		srv = &http.Server{Addr: opt.listen, Handler: coord}
		go func() {
			fmt.Fprintf(out, "# coordinator listening on %s (%d nodes)\n", opt.listen, len(nodes))
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				serveErr <- err
			}
		}()
	} else if opt.nodeAPI != "" {
		return fmt.Errorf("-node-api requires -listen")
	}

	routeErr := route(ctx, router, spec.Dims, in)
	if err := router.Flush(ctx); err != nil && routeErr == nil {
		routeErr = err
	}
	st := router.Stats()
	var total int64
	for _, n := range st.Records {
		total += n
	}
	fmt.Fprintf(out, "# routed %d records to %d nodes (%v), %d advances, %d reconnects\n",
		total, len(nodes), st.Records, st.Advances, st.Reconnects)
	if routeErr != nil {
		return routeErr
	}

	// The stream is done; the coordinator keeps answering queries until
	// the signal.
	if srv != nil {
		select {
		case err := <-serveErr:
			return err
		case <-ctx.Done():
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return err
		}
	}
	select {
	case err := <-serveErr:
		return err
	default:
	}
	return nil
}

// route decodes stdin — binary when the wire magic opens the stream,
// text otherwise — and feeds the router until EOF, a decode error, or
// the signal. Incoming advance barriers (a upstream router or replayed
// capture) are forwarded.
func route(ctx context.Context, router *cluster.Router, dims int, in io.Reader) error {
	br := bufio.NewReaderSize(in, 1<<16)
	peek, _ := br.Peek(len(wire.Magic))
	if string(peek) == wire.Magic {
		return routeBinary(ctx, router, br)
	}
	return routeText(ctx, router, dims, br)
}

func routeBinary(ctx context.Context, router *cluster.Router, br *bufio.Reader) error {
	r, err := wire.NewReader(br)
	if err != nil {
		return err
	}
	var b wire.Batch
	for {
		if ctx.Err() != nil {
			return nil
		}
		_, c, isCtrl, err := r.NextAny(&b)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if isCtrl {
			if err := router.Advance(ctx, c.Unit); err != nil {
				return err
			}
			continue
		}
		if err := router.RouteBatch(ctx, &b); err != nil {
			return err
		}
	}
}

func routeText(ctx context.Context, router *cluster.Router, dims int, br *bufio.Reader) error {
	rr := gen.NewRecordReader(br, dims)
	var n int64
	for {
		if ctx.Err() != nil {
			return nil
		}
		tick, members, value, err := rr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("record %d: %w", n+1, err)
		}
		n++
		if err := router.Append(ctx, tick, members, value); err != nil {
			return err
		}
	}
}
