// Command alertsink is a minimal webhook receiver for smoke tests and
// local demos of the alert lifecycle: it accepts POSTs on -listen and
// prints each request body as one line on stdout, so a shell script can
// grep the event stream a streamd -alert-webhook run delivers.
//
// Usage:
//
//	alertsink -listen 127.0.0.1:18084 &
//	streamd -alert-crit 5 -alert-webhook http://127.0.0.1:18084 ...
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to accept webhook POSTs on")
	flag.Parse()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alertsink: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("# sink listening on %s\n", ln.Addr())
	// One line per delivery even if a future sender posts concurrently.
	var mu sync.Mutex
	err = http.Serve(ln, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		fmt.Printf("%s\n", body)
		mu.Unlock()
	}))
	if err != nil {
		fmt.Fprintf(os.Stderr, "alertsink: %v\n", err)
		os.Exit(1)
	}
}
