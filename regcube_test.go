package regcube

import (
	"math"
	"testing"
)

// The facade tests double as end-to-end integration tests driven purely
// through the public API.

func TestFacadeFitAndAggregate(t *testing.T) {
	s1, err := NewSeries(0, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSeries(0, []float64{4, 3, 2, 1})
	i1, err := Fit(s1)
	if err != nil {
		t.Fatal(err)
	}
	i2, _ := Fit(s2)
	sum, err := AggregateStandard(i1, i2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Slope) > 1e-12 {
		t.Fatalf("slopes 1 and -1 must cancel, got %g", sum.Slope)
	}
	if math.Abs(sum.Mean()-5) > 1e-9 {
		t.Fatalf("mean = %g, want 5", sum.Mean())
	}
	// Time aggregation through the facade.
	s3, _ := NewSeries(4, []float64{5, 6, 7, 8})
	i3, _ := Fit(s3)
	whole, err := AggregateTime(i1, i3)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := NewSeries(0, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	direct, _ := Fit(full)
	if math.Abs(whole.Slope-direct.Slope) > 1e-9 {
		t.Fatalf("time agg slope %g vs direct %g", whole.Slope, direct.Slope)
	}
}

func TestFacadeEndToEndCubing(t *testing.T) {
	spec, err := ParseDatasetSpec("D2L2C3T200")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(DatasetConfig{Spec: spec, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MOCubing(ds.Schema, ds.Inputs, GlobalThreshold(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OLayer) == 0 {
		t.Fatal("no o-layer cells")
	}
	lattice := NewLattice(ds.Schema)
	pp, err := PopularPath(ds.Schema, ds.Inputs, GlobalThreshold(1), lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	for key, isb := range pp.Exceptions {
		want, ok := res.Exceptions[key]
		if !ok || math.Abs(want.Slope-isb.Slope) > 1e-9 {
			t.Fatalf("facade algorithms disagree at %v", key)
		}
	}
}

func TestFacadeStreamEngine(t *testing.T) {
	h, err := NewFanoutHierarchy("loc", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(Dimension{Name: "loc", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewStreamEngine(StreamConfig{
		Schema:       schema,
		TicksPerUnit: 4,
		Threshold:    GlobalThreshold(0.5),
		Algorithm:    AlgorithmPopularPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tk := int64(0); tk < 4; tk++ {
		if _, err := eng.Ingest([]int32{0}, tk, 2*float64(tk)); err != nil {
			t.Fatal(err)
		}
	}
	ur, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ur.Result == nil || len(ur.Alerts) == 0 {
		t.Fatal("steep stream must alert")
	}
}

func TestFacadeTiltFrame(t *testing.T) {
	f, err := NewFrame(CalendarFrameLevels(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.SlotCapacity() != 71 {
		t.Fatalf("capacity = %d, want 71", f.SlotCapacity())
	}
	lf, err := NewFrame(LogarithmicFrameLevels(3, 4, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Levels() != 3 {
		t.Fatal("log frame levels")
	}
}

func TestFacadeFolding(t *testing.T) {
	s, _ := NewSeries(0, []float64{1, 2, 3, 4, 5, 6})
	folded, err := Fold(s, 2, FoldAvg)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Len() != 3 || folded.Values[0] != 1.5 {
		t.Fatalf("folded = %v", folded.Values)
	}
	isb, _ := Fit(s)
	closed, err := FoldISB(isb, 2, FoldAvg)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := Fit(folded)
	if math.Abs(closed.Slope-direct.Slope) > 1e-9 {
		t.Fatalf("FoldISB slope %g vs direct %g", closed.Slope, direct.Slope)
	}
	for _, f := range []FoldFunc{FoldSum, FoldMin, FoldMax, FoldLast} {
		if _, err := Fold(s, 2, f); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
	}
}

func TestFacadeMLR(t *testing.T) {
	m := NewMLR(LinearBasis(2))
	for i := 0; i < 20; i++ {
		x := float64(i)
		if err := m.Observe([]float64{x, x * x}, 1+2*x+0.5*x*x); err != nil {
			t.Fatal(err)
		}
	}
	md, err := m.Fit()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 0.5} {
		if math.Abs(md.Coef[i]-want) > 1e-6 {
			t.Fatalf("coef[%d] = %g, want %g", i, md.Coef[i], want)
		}
	}
	// Merge through the facade.
	a, b := NewMLR(TimeBasis()), NewMLR(TimeBasis())
	for i := 0; i < 10; i++ {
		_ = a.Observe([]float64{float64(i)}, float64(i))
		_ = b.Observe([]float64{float64(10 + i)}, float64(10+i))
	}
	merged, err := MergeMLRTime(a, b)
	if err != nil {
		t.Fatal(err)
	}
	md2, err := merged.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(md2.Coef[1]-1) > 1e-9 {
		t.Fatalf("merged slope = %g, want 1", md2.Coef[1])
	}
	// Standard merge via facade.
	c, d := NewMLR(TimeBasis()), NewMLR(TimeBasis())
	for i := 0; i < 5; i++ {
		_ = c.Observe([]float64{float64(i)}, 1)
		_ = d.Observe([]float64{float64(i)}, 2)
	}
	ms, err := MergeMLRStandard(1e-9, c, d)
	if err != nil {
		t.Fatal(err)
	}
	md3, err := ms.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(md3.Coef[0]-3) > 1e-9 {
		t.Fatalf("standard-merged intercept = %g, want 3", md3.Coef[0])
	}
}

func TestFacadeBases(t *testing.T) {
	if PolynomialBasis(3).Dim != 4 {
		t.Fatal("poly dim")
	}
	if LogBasis().Dim != 2 || ExpBasis(0.5).Dim != 2 || TimeBasis().Dim != 2 {
		t.Fatal("basis dims")
	}
}

func TestFacadeExceptionHelpers(t *testing.T) {
	if !IsException(ISB{Slope: -2}, 1) || IsException(ISB{Slope: 0.5}, 1) {
		t.Fatal("IsException through facade")
	}
	thr := PerCuboidThreshold{Default: 1}
	if thr.Threshold(Cuboid{}) != 1 {
		t.Fatal("per-cuboid default")
	}
	pd := PerDepthThreshold{Base: 2, Scale: 1}
	if pd.Threshold(Cuboid{}) != 2 {
		t.Fatal("per-depth base")
	}
	delta := DeltaDetector{MinSlopeChange: 1}
	if !delta.Exceptional(ISB{Slope: 2}, ISB{Slope: 0}, true) {
		t.Fatal("delta detector")
	}
}

func TestFacadeNamedHierarchy(t *testing.T) {
	h := NewNamedHierarchy("region")
	if err := h.AddLevel([]string{"east", "west"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.AddLevel([]string{"nyc", "sf"}, []int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(Dimension{Name: "region", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if schema.CuboidCount() != 2 {
		t.Fatalf("cuboids = %d", schema.CuboidCount())
	}
}

func TestFacadeResidualsAndAccumulator(t *testing.T) {
	s, _ := NewSeries(0, []float64{1, 2, 3})
	isb, _ := Fit(s)
	st, err := Residuals(s, isb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.R2-1) > 1e-9 {
		t.Fatalf("R2 = %g", st.R2)
	}
	acc := NewAccumulator(0)
	for i, v := range s.Values {
		if err := acc.Add(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := acc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(snap.Slope-isb.Slope) > 1e-12 {
		t.Fatal("accumulator disagrees with batch fit")
	}
}
