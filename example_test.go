package regcube_test

import (
	"fmt"

	regcube "repro"
)

// ExampleFit compresses a raw series into the paper's 4-number ISB
// measure.
func ExampleFit() {
	s, _ := regcube.NewSeries(0, []float64{1, 2, 3, 4, 5})
	isb, _ := regcube.Fit(s)
	fmt.Printf("base=%.1f slope=%.1f over [%d,%d]\n", isb.Base, isb.Slope, isb.Tb, isb.Te)
	// Output: base=1.0 slope=1.0 over [0,4]
}

// ExampleAggregateStandard rolls two cells' measures up a standard
// dimension without touching raw data (Theorem 3.2).
func ExampleAggregateStandard() {
	a := regcube.ISB{Tb: 0, Te: 9, Base: 1.5, Slope: 0.25}
	b := regcube.ISB{Tb: 0, Te: 9, Base: 0.5, Slope: -0.05}
	sum, _ := regcube.AggregateStandard(a, b)
	fmt.Printf("base=%.2f slope=%.2f\n", sum.Base, sum.Slope)
	// Output: base=2.00 slope=0.20
}

// ExampleAggregateTime merges two adjacent quarters into one half-hour
// regression (Theorem 3.3) and matches a direct fit of the joined data.
func ExampleAggregateTime() {
	q1, _ := regcube.NewSeries(0, []float64{10, 12, 14})
	q2, _ := regcube.NewSeries(3, []float64{16, 18, 20})
	i1, _ := regcube.Fit(q1)
	i2, _ := regcube.Fit(q2)
	merged, _ := regcube.AggregateTime(i1, i2)
	fmt.Printf("slope=%.1f over [%d,%d]\n", merged.Slope, merged.Tb, merged.Te)
	// Output: slope=2.0 over [0,5]
}

// ExampleFold demonstrates §6.2 time folding: six fine ticks into two
// coarse ones with each SQL aggregate.
func ExampleFold() {
	s, _ := regcube.NewSeries(0, []float64{1, 5, 3, 2, 8, 4})
	for _, f := range []regcube.FoldFunc{regcube.FoldSum, regcube.FoldAvg, regcube.FoldMax, regcube.FoldLast} {
		out, _ := regcube.Fold(s, 3, f)
		fmt.Printf("%s: %v\n", f, out.Values)
	}
	// Output:
	// sum: [9 14]
	// avg: [3 4.666666666666667]
	// max: [5 8]
	// last: [3 4]
}

// ExampleMOCubing runs the paper's Algorithm 1 end to end on a tiny
// workload.
func ExampleMOCubing() {
	h, _ := regcube.NewFanoutHierarchy("loc", 2, 2)
	schema, _ := regcube.NewSchema(regcube.Dimension{Name: "loc", Hierarchy: h, MLevel: 2, OLevel: 1})
	inputs := []regcube.Input{
		{Members: []int32{0}, Measure: regcube.ISB{Tb: 0, Te: 9, Base: 1, Slope: 3}},
		{Members: []int32{1}, Measure: regcube.ISB{Tb: 0, Te: 9, Base: 1, Slope: 0.1}},
		{Members: []int32{2}, Measure: regcube.ISB{Tb: 0, Te: 9, Base: 1, Slope: -0.1}},
	}
	res, _ := regcube.MOCubing(schema, inputs, regcube.GlobalThreshold(1))
	fmt.Printf("o-layer cells: %d, exceptions: %d\n", len(res.OLayer), len(res.Exceptions))
	// Output: o-layer cells: 2, exceptions: 2
}

// ExampleFrame shows the tilt time frame promoting quarters into hours.
func ExampleFrame() {
	frame, _ := regcube.NewFrame([]regcube.FrameLevel{
		{Name: "quarter", Multiple: 3, Slots: 4},
		{Name: "hour", Multiple: 4, Slots: 2},
	}, 0)
	for t := int64(0); t < 12; t++ { // exactly one hour of ticks
		_ = frame.Add(t, float64(t))
	}
	fmt.Printf("quarters=%d hours=%d slots=%d/%d\n",
		frame.Completed(0), frame.Completed(1), frame.SlotsInUse(), frame.SlotCapacity())
	// Output: quarters=4 hours=1 slots=5/6
}
