package regcube

// Benchmarks regenerating the paper's evaluation (one bench per figure
// panel, on bench-scale datasets — full paper-scale sweeps run via
// cmd/benchfig), plus micro-benchmarks of the substrate operations and
// ablation benches for the design decisions listed in DESIGN.md §5.
//
// Custom metrics reported per op:
//   cells/op  — cells aggregated (the paper's computation cost)
//   peakMB/op — peak resident estimate (the paper's memory-usage panels)

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/htree"
	"repro/internal/regression"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/timeseries"
)

func benchDataset(b *testing.B, spec gen.Spec, seed int64) *gen.Dataset {
	b.Helper()
	ds, err := gen.Generate(gen.Config{Spec: spec, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func reportCubing(b *testing.B, res *core.Result) {
	b.Helper()
	b.ReportMetric(float64(res.Stats.CellsComputed), "cells/op")
	b.ReportMetric(float64(res.Stats.PeakBytes)/(1<<20), "peakMB/op")
}

// --- Figure 8: time & space vs exception rate (D3L3C6T10K bench scale) ---

func BenchmarkFig8MOCubing(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 8)
	rates := []float64{0.001, 0.01, 0.1, 1}
	thresholds := ds.CalibrateThresholds(rates)
	for i, rate := range rates {
		thr := exception.Global(thresholds[i])
		b.Run(fmt.Sprintf("exc=%g%%", rate*100), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

func BenchmarkFig8PopularPath(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 8)
	path := cube.NewLattice(ds.Schema).DefaultPath()
	rates := []float64{0.001, 0.01, 0.1, 1}
	thresholds := ds.CalibrateThresholds(rates)
	for i, rate := range rates {
		thr := exception.Global(thresholds[i])
		b.Run(fmt.Sprintf("exc=%g%%", rate*100), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.PopularPath(ds.Schema, ds.Inputs, thr, path)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

// --- Figure 9: time & space vs m-layer size (D3L3C6, 1% exceptions) ------

func BenchmarkFig9MOCubing(b *testing.B) {
	b.ReportAllocs()
	full := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 32000}, 9)
	for _, size := range []int{4000, 8000, 16000, 32000} {
		ds, err := full.Subset(size)
		if err != nil {
			b.Fatal(err)
		}
		thr := exception.Global(ds.CalibrateThreshold(0.01))
		b.Run(fmt.Sprintf("T=%dK", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

func BenchmarkFig9PopularPath(b *testing.B) {
	b.ReportAllocs()
	full := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 32000}, 9)
	path := cube.NewLattice(full.Schema).DefaultPath()
	for _, size := range []int{4000, 8000, 16000, 32000} {
		ds, err := full.Subset(size)
		if err != nil {
			b.Fatal(err)
		}
		thr := exception.Global(ds.CalibrateThreshold(0.01))
		b.Run(fmt.Sprintf("T=%dK", size/1000), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.PopularPath(ds.Schema, ds.Inputs, thr, path)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

// --- Figure 10: time & space vs #levels (D2C10T10K bench scale) ----------

func BenchmarkFig10MOCubing(b *testing.B) {
	b.ReportAllocs()
	for _, levels := range []int{3, 4, 5} {
		ds := benchDataset(b, gen.Spec{Dims: 2, Levels: levels, Fanout: 10, Tuples: 10000}, 10)
		thr := exception.Global(ds.CalibrateThreshold(0.01))
		b.Run(fmt.Sprintf("L=%d", levels), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

func BenchmarkFig10PopularPath(b *testing.B) {
	b.ReportAllocs()
	for _, levels := range []int{3, 4, 5} {
		ds := benchDataset(b, gen.Spec{Dims: 2, Levels: levels, Fanout: 10, Tuples: 10000}, 10)
		path := cube.NewLattice(ds.Schema).DefaultPath()
		thr := exception.Global(ds.CalibrateThreshold(0.01))
		b.Run(fmt.Sprintf("L=%d", levels), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.PopularPath(ds.Schema, ds.Inputs, thr, path)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

// --- Substrate micro-benchmarks ------------------------------------------

func BenchmarkFit100Points(b *testing.B) {
	b.ReportAllocs()
	s := timeseries.NewSynth(1).Linear(0, 100, 5, 0.2, 1)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := regression.Fit(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateStandard8(b *testing.B) {
	b.ReportAllocs()
	isbs := make([]regression.ISB, 8)
	for i := range isbs {
		isbs[i] = regression.ISB{Tb: 0, Te: 99, Base: float64(i), Slope: float64(i) / 10}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := regression.AggregateStandard(isbs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregateTime8(b *testing.B) {
	b.ReportAllocs()
	isbs := make([]regression.ISB, 8)
	for i := range isbs {
		isbs[i] = regression.ISB{Tb: int64(i * 10), Te: int64(i*10 + 9), Base: float64(i), Slope: 0.5}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := regression.AggregateTime(isbs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	b.ReportAllocs()
	acc := regression.NewAccumulator(0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := acc.Add(int64(n), float64(n%7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTreeInsert(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 11)
	attrs := htree.CardinalityOrder(ds.Schema)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		in := ds.Inputs[n%len(ds.Inputs)]
		if n%len(ds.Inputs) == 0 {
			b.StopTimer()
			var err error
			tree, err := htree.New(ds.Schema, attrs)
			if err != nil {
				b.Fatal(err)
			}
			benchTree = tree
			b.StartTimer()
		}
		if err := benchTree.Insert(in.Members, in.Measure); err != nil {
			b.Fatal(err)
		}
	}
}

var benchTree *htree.HTree

func BenchmarkTiltFrameAdd(b *testing.B) {
	b.ReportAllocs()
	f := tilt.MustNew(tilt.CalendarLevels(), 0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := f.Add(int64(n), float64(n%60)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamIngest(b *testing.B) {
	b.ReportAllocs()
	h, err := cube.NewFanoutHierarchy("A", 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	schema, err := cube.NewSchema(cube.Dimension{Name: "A", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := stream.NewEngine(stream.Config{
		Schema:       schema,
		TicksPerUnit: 60,
		Threshold:    exception.Global(5),
	})
	if err != nil {
		b.Fatal(err)
	}
	members := make([][]int32, 16)
	for i := range members {
		members[i] = []int32{int32(i)}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tick := int64(n / 16)
		if _, err := eng.Ingest(members[n%16], tick, float64(n%13)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Sharded stream engine (DESIGN.md §6): throughput vs shard count ------

// shardedBenchSchema is sized for parallelism: the 8×8 o-layer gives 64
// hash partitions, so up to 64 shards stay busy.
func shardedBenchSchema(b *testing.B) *cube.Schema {
	b.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		b.Fatal(err)
	}
	return schema
}

// shardedBenchCells spreads 256 distinct m-cells over every o-partition.
func shardedBenchCells() [][]int32 {
	cells := make([][]int32, 256)
	for i := range cells {
		cells[i] = []int32{int32(i % 64), int32((i*7 + i/64) % 64)}
	}
	return cells
}

// Pure accumulate path: no unit ever closes; the final drain (an
// ActiveCells barrier, inside the timer) waits for queued shard work so it
// is charged to the run. Near-linear scaling here needs ≥ `shards` cores.
func BenchmarkShardedIngest(b *testing.B) {
	b.ReportAllocs()
	schema := shardedBenchSchema(b)
	cells := shardedBenchCells()
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: 1 << 30,
		Threshold:    exception.Global(1e18), // no alerts: isolate ingest
	}
	run := func(b *testing.B, ingest func(members []int32, tick int64, v float64) error, drain func() error) {
		b.Helper()
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			tick := int64(n / len(cells))
			if err := ingest(cells[n%len(cells)], tick, float64(n%13)); err != nil {
				b.Fatal(err)
			}
		}
		if err := drain(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("single-engine", func(b *testing.B) {
		b.ReportAllocs()
		eng, err := stream.NewEngine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		run(b,
			func(m []int32, t int64, v float64) error { _, err := eng.Ingest(m, t, v); return err },
			func() error { _ = eng.ActiveCells(); return nil })
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := stream.NewShardedEngine(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			run(b,
				func(m []int32, t int64, v float64) error { _, err := eng.Ingest(m, t, v); return err },
				func() error { _, err := eng.ActiveCells(); return err })
		})
	}
}

// Same pipeline with snapshot publication on and a subscriber draining
// the broadcast bus — the serving/alerting configuration. The subscriber
// costs one channel send per closed unit; the delta against
// BenchmarkShardedPipeline is the bus's whole ingest-path overhead.
func BenchmarkShardedIngestBusSubscriber(b *testing.B) {
	b.ReportAllocs()
	schema := shardedBenchSchema(b)
	cells := shardedBenchCells()
	cfg := stream.Config{
		Schema:           schema,
		TicksPerUnit:     64,
		Threshold:        exception.Global(100),
		PublishSnapshots: true,
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := stream.NewShardedEngine(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			sub := eng.Subscribe(16)
			defer sub.Close()
			done := make(chan int64)
			stop := make(chan struct{})
			go func() {
				var seen int64
				for {
					select {
					case <-sub.C():
						seen++
					case <-stop:
						// Publication has stopped; count what is still
						// buffered so the accounting below is exact.
						for {
							select {
							case <-sub.C():
								seen++
								continue
							default:
							}
							break
						}
						done <- seen
						return
					}
				}
			}()
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				tick := int64(n / len(cells))
				if _, err := eng.Ingest(cells[n%len(cells)], tick, float64(n%13)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			close(stop)
			seen := <-done
			if units := eng.UnitsDone(); units > 0 && seen+eng.BusDropped() < units {
				b.Fatalf("subscriber saw %d of %d units with %d dropped", seen, units, eng.BusDropped())
			}
		})
	}
}

// End-to-end pipeline: a unit closes (and cubes, in parallel across
// shards) every 64 ticks × 256 cells, the dominant cost at stream scale.
func BenchmarkShardedPipeline(b *testing.B) {
	b.ReportAllocs()
	schema := shardedBenchSchema(b)
	cells := shardedBenchCells()
	cfg := stream.Config{
		Schema:       schema,
		TicksPerUnit: 64,
		Threshold:    exception.Global(100),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := stream.NewShardedEngine(cfg, shards)
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			var units int64
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				tick := int64(n / len(cells))
				closed, err := eng.Ingest(cells[n%len(cells)], tick, float64(n%13))
				if err != nil {
					b.Fatal(err)
				}
				units += int64(len(closed))
			}
			if _, err := eng.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(units+1)/float64(b.N), "units/op")
		})
	}
}

// --- Ablation benches (DESIGN.md §5) --------------------------------------

// Ablation: H-tree construction vs a flat map of m-layer cells. The H-tree
// pays for prefix structure; the flat map cannot serve path cuboids or
// header-table traversals.
func BenchmarkAblationHTreeBuild(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 12)
	attrs := htree.CardinalityOrder(ds.Schema)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tree, err := htree.New(ds.Schema, attrs)
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range ds.Inputs {
			if err := tree.Insert(in.Members, in.Measure); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationFlatMapBuild(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 12)
	m := ds.Schema.MLayer()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		flat := make(map[cube.CellKey]regression.ISB, len(ds.Inputs))
		for _, in := range ds.Inputs {
			var members [cube.MaxDims]int32
			copy(members[:], in.Members)
			key := cube.CellKey{Cuboid: m, Members: members}
			if cur, ok := flat[key]; ok {
				cur.Base += in.Measure.Base
				cur.Slope += in.Measure.Slope
				flat[key] = cur
			} else {
				flat[key] = in.Measure
			}
		}
	}
}

// Ablation: exception-only retention (the paper's Framework 4.1) vs full
// materialization of every cuboid — the memory blowup the framework avoids.
func BenchmarkAblationExceptionRetention(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 2, Fanout: 8, Tuples: 10000}, 13)
	thr := exception.Global(ds.CalibrateThreshold(0.01))
	b.Run("exception-only", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Stats.CellsRetained), "retained/op")
	})
	b.Run("full-materialization", func(b *testing.B) {
		b.ReportAllocs()
		// Threshold 0 makes every cell exceptional: everything is retained.
		full := exception.Global(0)
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.MOCubing(ds.Schema, ds.Inputs, full)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Stats.CellsRetained), "retained/op")
	})
}

// Ablation: the four cubing engines on one workload — m/o H-cubing vs
// BUC partitioning vs dense multiway arrays vs full materialization
// (§7's suggested alternatives, all producing identical answers).
func BenchmarkAblationEngines(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 2, Fanout: 8, Tuples: 20000}, 14)
	thr := exception.Global(ds.CalibrateThreshold(0.01))
	b.Run("mo-cubing", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportCubing(b, last)
	})
	b.Run("buc", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.BUCCubing(ds.Schema, ds.Inputs, thr, core.BUCOptions{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportCubing(b, last)
	})
	b.Run("buc-minsup8", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.BUCCubing(ds.Schema, ds.Inputs, thr, core.BUCOptions{MinSupport: 8})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportCubing(b, last)
	})
	b.Run("array", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.Result
		for n := 0; n < b.N; n++ {
			res, err := core.ArrayCubing(ds.Schema, ds.Inputs, thr)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		reportCubing(b, last)
	})
	b.Run("full-materialize", func(b *testing.B) {
		b.ReportAllocs()
		var last *core.FullResult
		for n := 0; n < b.N; n++ {
			res, err := core.FullCubing(ds.Schema, ds.Inputs)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(float64(last.Stats.CellsRetained), "retained/op")
	})
}

// Ablation: precomputed AncestorIndex roll-up vs the interface-walking
// cube.RollUpKey in m/o-cubing's cuboid×leaf loop — identical sorted-run
// aggregation (and identical bitwise results) in both arms, so the gap is
// purely the per-leaf ancestor resolution (DESIGN.md §5 #7).
func BenchmarkAblationAncestorIndex(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 16)
	thr := exception.Global(ds.CalibrateThreshold(0.01))
	for _, bc := range []struct {
		name string
		opts core.CubingOptions
	}{
		{"indexed", core.CubingOptions{}},
		{"interface-walk", core.CubingOptions{NoAncestorIndex: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubingWith(ds.Schema, ds.Inputs, thr, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

// Ablation: the reusable sorted-run scratch aggregator vs the original
// per-cuboid map header table — AncestorIndex roll-ups (and identical
// bitwise results) in both arms, so the gap is purely the scratch
// strategy's allocation and hashing churn (DESIGN.md §5 #8).
func BenchmarkAblationScratchReuse(b *testing.B) {
	b.ReportAllocs()
	ds := benchDataset(b, gen.Spec{Dims: 3, Levels: 3, Fanout: 6, Tuples: 10000}, 16)
	thr := exception.Global(ds.CalibrateThreshold(0.01))
	for _, bc := range []struct {
		name string
		opts core.CubingOptions
	}{
		{"sorted-run", core.CubingOptions{}},
		{"map-scratch", core.CubingOptions{MapScratch: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubingWith(ds.Schema, ds.Inputs, thr, bc.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			reportCubing(b, last)
		})
	}
}

// Ablation: workload skew. Zipf-hot cells share H-tree prefixes, shrinking
// the tree and the m-layer relative to a uniform draw of the same size.
func BenchmarkAblationSkew(b *testing.B) {
	b.ReportAllocs()
	for _, skew := range []float64{0, 0.5, 1.0} {
		ds, err := gen.Generate(gen.Config{
			Spec: gen.Spec{Dims: 3, Levels: 2, Fanout: 8, Tuples: 20000},
			Seed: 15, Skew: skew,
		})
		if err != nil {
			b.Fatal(err)
		}
		thr := exception.Global(ds.CalibrateThreshold(0.01))
		b.Run(fmt.Sprintf("skew=%.1f", skew), func(b *testing.B) {
			b.ReportAllocs()
			var last *core.Result
			for n := 0; n < b.N; n++ {
				res, err := core.MOCubing(ds.Schema, ds.Inputs, thr)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Stats.TreeLeaves), "leaves/op")
			reportCubing(b, last)
		})
	}
}

// Ablation: tilt frame vs registering every fine-granularity unit — the
// Example 3 space saving, measured as retained slots after a year of
// quarter-hours.
func BenchmarkAblationTiltVsFullFrame(b *testing.B) {
	b.ReportAllocs()
	const quartersPerYear = 366 * 24 * 4
	b.Run("tilt-frame", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			f := tilt.MustNew(tilt.CalendarLevels(), 0)
			for q := 0; q < quartersPerYear/32; q++ { // scaled year
				for m := 0; m < 15; m++ {
					if err := f.Add(int64(q*15+m), float64(m)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(f.SlotsInUse()), "slots/op")
		}
	})
	b.Run("full-frame", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			slots := make([]regression.ISB, 0, quartersPerYear/32)
			acc := regression.NewAccumulator(0)
			for q := 0; q < quartersPerYear/32; q++ {
				for m := 0; m < 15; m++ {
					if err := acc.Add(int64(q*15+m), float64(m)); err != nil {
						b.Fatal(err)
					}
				}
				isb, err := acc.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				slots = append(slots, isb)
				acc.Reset(int64((q + 1) * 15))
			}
			b.ReportMetric(float64(len(slots)), "slots/op")
		}
	})
}
