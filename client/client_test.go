package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tilt"
)

// testSchema is D2, fanout 2, m-level 2, o-level 1 — the serve fixture.
func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	ha, err := cube.NewFanoutHierarchy("A", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := cube.NewFanoutHierarchy("B", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := cube.NewSchema(
		cube.Dimension{Name: "A", Hierarchy: ha, MLevel: 2, OLevel: 1},
		cube.Dimension{Name: "B", Hierarchy: hb, MLevel: 2, OLevel: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// testServer runs a real HTTP query server over an engine with `units`
// closed units (tilted when tiltLevels is set) and returns a client for
// it.
func testServer(t testing.TB, units int, tiltLevels []tilt.Level) (*client.Client, *httptest.Server) {
	t.Helper()
	schema := testSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
		TiltLevels:       tiltLevels,
	})
	if err != nil {
		t.Fatal(err)
	}
	for tick := int64(0); tick < int64(4*units); tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick)*float64(a+2*b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if _, err := eng.Ingest([]int32{0, 0}, int64(4*units), 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(eng, schema))
	t.Cleanup(ts.Close)
	c, err := client.New(client.WithEndpoints(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// getJSON decodes a GET endpoint's body into out.
func getJSON(t testing.TB, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: %v: %s", path, err, body)
	}
}

// TestClientMatchesGET is the round-trip equivalence suite: every typed
// client method must return exactly what the matching GET endpoint
// serves for the same parameters — same dispatcher, same snapshot, same
// wire types.
func TestClientMatchesGET(t *testing.T) {
	c, ts := testServer(t, 3, nil)
	ctx := context.Background()

	var wantSummary client.SummaryResponse
	getJSON(t, ts, "/v1/summary", &wantSummary)
	gotSummary, err := c.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSummary, &wantSummary) {
		t.Errorf("Summary = %+v\nwant %+v", gotSummary, &wantSummary)
	}

	var wantExc client.CellsResponse
	getJSON(t, ts, "/v1/exceptions?k=5", &wantExc)
	gotExc, err := c.Exceptions(ctx, client.ExceptionsRequest{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotExc, &wantExc) {
		t.Errorf("Exceptions = %+v\nwant %+v", gotExc, &wantExc)
	}

	var wantAlerts client.AlertsResponse
	getJSON(t, ts, "/v1/alerts", &wantAlerts)
	gotAlerts, err := c.Alerts(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAlerts, &wantAlerts) {
		t.Errorf("Alerts = %+v\nwant %+v", gotAlerts, &wantAlerts)
	}

	var wantSup client.SupportersResponse
	getJSON(t, ts, "/v1/supporters?members=1,1", &wantSup)
	gotSup, err := c.Supporters(ctx, client.SupportersRequest{CellRef: client.OCell(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSup, &wantSup) {
		t.Errorf("Supporters = %+v\nwant %+v", gotSup, &wantSup)
	}

	var wantSlice client.CellsResponse
	getJSON(t, ts, "/v1/slice?dim=0&level=1&member=1&k=3", &wantSlice)
	gotSlice, err := c.Slice(ctx, client.SliceRequest{Dim: 0, Level: 1, Member: 1, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSlice, &wantSlice) {
		t.Errorf("Slice = %+v\nwant %+v", gotSlice, &wantSlice)
	}

	var wantTrend client.TrendResponse
	getJSON(t, ts, "/v1/trend?members=0,0&k=3", &wantTrend)
	gotTrend, err := c.Trend(ctx, client.TrendRequest{CellRef: client.OCell(0, 0), K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTrend, &wantTrend) {
		t.Errorf("Trend = %+v\nwant %+v", gotTrend, &wantTrend)
	}

	var wantFrame client.FrameResponse
	getJSON(t, ts, "/v1/frame?members=0,0", &wantFrame)
	gotFrame, err := c.Frame(ctx, client.FrameRequest{CellRef: client.OCell(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFrame, &wantFrame) {
		t.Errorf("Frame = %+v\nwant %+v", gotFrame, &wantFrame)
	}

	var wantFc client.ForecastResponse
	getJSON(t, ts, "/v1/forecast?members=0,0&horizon=8&threshold=500", &wantFc)
	th := 500.0
	gotFc, err := c.Forecast(ctx, client.ForecastRequest{CellRef: client.OCell(0, 0), Horizon: 8, Threshold: &th})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFc, &wantFc) {
		t.Errorf("Forecast = %+v\nwant %+v", gotFc, &wantFc)
	}

	var wantCh client.ChangesResponse
	getJSON(t, ts, "/v1/changes?k=3", &wantCh)
	gotCh, err := c.Changes(ctx, client.ChangesRequest{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCh, &wantCh) {
		t.Errorf("Changes = %+v\nwant %+v", gotCh, &wantCh)
	}
}

// TestClientMatchesGETTilted runs the equivalence suite's tilt-specific
// paths: level trends and the multi-level frame.
func TestClientMatchesGETTilted(t *testing.T) {
	levels := []tilt.Level{
		{Name: "quarter", Multiple: 1, Slots: 3},
		{Name: "hour", Multiple: 3, Slots: 4},
	}
	c, ts := testServer(t, 13, levels)
	ctx := context.Background()

	var wantTrend client.TrendResponse
	getJSON(t, ts, "/v1/trend?members=1,1&k=2&level=1", &wantTrend)
	gotTrend, err := c.Trend(ctx, client.TrendRequest{CellRef: client.OCell(1, 1), K: 2, Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotTrend, &wantTrend) || gotTrend.Level != "hour" {
		t.Errorf("tilted Trend = %+v\nwant %+v", gotTrend, &wantTrend)
	}

	var wantFrame client.FrameResponse
	getJSON(t, ts, "/v1/frame?members=1,0", &wantFrame)
	gotFrame, err := c.Frame(ctx, client.FrameRequest{CellRef: client.OCell(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFrame, &wantFrame) || !gotFrame.Tilted {
		t.Errorf("tilted Frame = %+v\nwant %+v", gotFrame, &wantFrame)
	}

	var wantCh client.ChangesResponse
	getJSON(t, ts, "/v1/changes?k=2", &wantCh)
	gotCh, err := c.Changes(ctx, client.ChangesRequest{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCh, &wantCh) || !gotCh.Tilted {
		t.Errorf("tilted Changes = %+v\nwant %+v", gotCh, &wantCh)
	}
}

// TestClientBatchMixed sends one batch with valid and failing
// sub-requests: results decode in order, errors map to the sentinels,
// and every success reports the same unit.
func TestClientBatchMixed(t *testing.T) {
	c, _ := testServer(t, 3, nil)
	reply, err := c.Batch(context.Background(),
		client.SummaryRequest{},
		client.ExceptionsRequest{K: 2},
		client.SupportersRequest{CellRef: client.OCell(9, 9)},   // invalid member
		client.TrendRequest{CellRef: client.OCell(0, 0), K: 99}, // not recorded
		client.SliceRequest{Dim: 0, Level: 1, Member: 0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Results) != 5 {
		t.Fatalf("reply has %d results, want 5", len(reply.Results))
	}
	sum, ok := reply.Results[0].Response.(*client.SummaryResponse)
	if !ok || reply.Results[0].Err != nil {
		t.Fatalf("summary result = %+v / %v", reply.Results[0].Response, reply.Results[0].Err)
	}
	if sum.Unit != reply.Unit {
		t.Fatalf("summary unit %d != batch unit %d", sum.Unit, reply.Unit)
	}
	if exc := reply.Results[1].Response.(*client.CellsResponse); len(exc.Cells) != 2 || exc.Unit != reply.Unit {
		t.Fatalf("exceptions result = %+v", exc)
	}
	if err := reply.Results[2].Err; !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("invalid sub-request err = %v, want ErrInvalid", err)
	}
	if err := reply.Results[3].Err; !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("not-found sub-request err = %v, want ErrNotFound", err)
	}
	if sl := reply.Results[4].Response.(*client.CellsResponse); sl.Unit != reply.Unit {
		t.Fatalf("slice unit %d != batch unit %d", sl.Unit, reply.Unit)
	}

	if _, err := c.Batch(context.Background()); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("empty batch err = %v, want ErrInvalid", err)
	}
}

// TestClientErrorMapping covers the standalone-method error paths.
func TestClientErrorMapping(t *testing.T) {
	c, _ := testServer(t, 2, nil)
	ctx := context.Background()
	if _, err := c.Exceptions(ctx, client.ExceptionsRequest{Order: "bogus"}); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("bad order err = %v, want ErrInvalid", err)
	}
	if _, err := c.Trend(ctx, client.TrendRequest{CellRef: client.OCell(0, 0), K: 99}); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("over-long trend err = %v, want ErrNotFound", err)
	}
	// Coarse levels on a flat engine are invalid, not missing.
	if _, err := c.Trend(ctx, client.TrendRequest{CellRef: client.OCell(0, 0), K: 1, Level: 1}); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("flat-engine level err = %v, want ErrInvalid", err)
	}
}

// TestClientHealth covers /healthz on cold and warm servers.
func TestClientHealth(t *testing.T) {
	schema := testSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema: schema, TicksPerUnit: 4, Threshold: exception.Global(0.5), PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(eng, schema))
	defer ts.Close()
	c, err := client.New(client.WithEndpoints(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Serving || h.Unit != -1 || h.Status != "ok" {
		t.Fatalf("cold health = %+v", h)
	}
	// A typed query against the cold server exhausts its 503 retries.
	fast, err := client.New(client.WithEndpoints(ts.URL), client.WithRetries(1), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fast.Summary(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("cold summary err = %v, want ErrUnavailable", err)
	}

	warm, tsWarm := testServer(t, 2, nil)
	h, err = warm.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Serving || h.Unit != 1 || h.UnitsDone != 2 {
		t.Fatalf("warm health = %+v", h)
	}
	_ = tsWarm
}

// TestClientRetriesUnavailable fronts the real server with a proxy that
// 503s the first attempts: the client's retry policy must ride through
// and succeed without caller involvement.
func TestClientRetriesUnavailable(t *testing.T) {
	_, real := testServer(t, 2, nil)
	var n atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"no completed unit yet"}`))
			return
		}
		resp, err := http.Post(real.URL+r.URL.Path, r.Header.Get("Content-Type"), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer flaky.Close()

	c, err := client.New(client.WithEndpoints(flaky.URL), client.WithRetries(3), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil {
		t.Fatalf("retried summary: %v", err)
	}
	if sum.Unit != 1 {
		t.Fatalf("summary unit = %d, want 1", sum.Unit)
	}
	if got := n.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}

	// With retries off the first 503 surfaces immediately.
	n.Store(0)
	zero, err := client.New(client.WithEndpoints(flaky.URL), client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zero.Summary(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("no-retry err = %v, want ErrUnavailable", err)
	}
	if got := n.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1", got)
	}
}

// TestClientNew pins endpoint validation for both constructors.
func TestClientNew(t *testing.T) {
	for _, bad := range []string{"", "127.0.0.1:8080", "ftp://x", "http://"} {
		if _, err := client.New(client.WithEndpoints(bad)); err == nil {
			t.Errorf("New(WithEndpoints(%q)) succeeded, want error", bad)
		}
		if _, err := client.NewURL(bad); err == nil {
			t.Errorf("NewURL(%q) succeeded, want error", bad)
		}
	}
	if _, err := client.New(); err == nil {
		t.Error("New with no endpoints succeeded, want error")
	}
	c, err := client.New(client.WithEndpoints("http://127.0.0.1:8080/", "http://127.0.0.1:8081"))
	if err != nil {
		t.Fatalf("New with trailing slash: %v", err)
	}
	if got := c.Endpoints(); len(got) != 2 || got[0] != "http://127.0.0.1:8080" {
		t.Fatalf("Endpoints() = %v", got)
	}
	if _, err := client.NewURL("http://127.0.0.1:8080"); err != nil {
		t.Errorf("NewURL: %v", err)
	}
}

// TestClientFailover pins the multi-endpoint contract: a down first
// endpoint (refused connections and 503s alike) fails over to the next
// one within a single pass — even with retries off — and the endpoint
// that answered becomes the preferred one for subsequent calls.
func TestClientFailover(t *testing.T) {
	_, real := testServer(t, 2, nil)
	var deadHits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"no completed unit yet"}`))
	}))
	defer dead.Close()

	// Retries 0 = one pass over the list; a 503 from the first endpoint
	// must still reach the second.
	c, err := client.New(client.WithEndpoints(dead.URL, real.URL),
		client.WithRetries(0), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary(context.Background())
	if err != nil {
		t.Fatalf("failover summary: %v", err)
	}
	if sum.Unit != 1 {
		t.Fatalf("summary unit = %d, want 1", sum.Unit)
	}
	if got := deadHits.Load(); got != 1 {
		t.Fatalf("dead endpoint saw %d attempts, want 1", got)
	}
	// Stickiness: the next call starts at the endpoint that answered.
	if _, err := c.Summary(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := deadHits.Load(); got != 1 {
		t.Fatalf("dead endpoint saw %d attempts after stickiness, want 1", got)
	}

	// A refused connection (closed server) fails over the same way.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	gone.Close()
	c2, err := client.New(client.WithEndpoints(gone.URL, real.URL), client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Summary(context.Background()); err != nil {
		t.Fatalf("failover from refused connection: %v", err)
	}

	// Deterministic errors do not fail over: a 400 from the preferred
	// endpoint surfaces immediately.
	var badHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad request"}`))
	}))
	defer bad.Close()
	c3, err := client.New(client.WithEndpoints(bad.URL, real.URL), client.WithRetries(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Summary(context.Background()); !errors.Is(err, client.ErrInvalid) {
		t.Fatalf("400 err = %v, want ErrInvalid", err)
	}
	if got := badHits.Load(); got != 1 {
		t.Fatalf("bad endpoint saw %d attempts, want 1", got)
	}

	// All endpoints down: the last error surfaces after every endpoint
	// was tried on every pass.
	deadHits.Store(0)
	c4, err := client.New(client.WithEndpoints(dead.URL, dead.URL),
		client.WithRetries(1), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Summary(context.Background()); !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("all-down err = %v, want ErrUnavailable", err)
	}
	if got := deadHits.Load(); got != 4 {
		t.Fatalf("dead endpoint saw %d attempts, want 4 (2 endpoints x 2 passes)", got)
	}
}
