// Package client is the Go SDK for the regcube query API v2.
//
// A Client speaks the typed request model of internal/query to a running
// query server (streamd -listen, or any serve.Server): every analyst
// question — summaries, ranked exceptions, alerts, drill-down supporters,
// slices, multi-unit trends, tilt frames — is a typed request with a
// typed response, transported through POST /v1/query. Batch sends many
// requests in one round trip and the server answers them all from one
// snapshot, so every result in a batch is unit-consistent with every
// other; the per-query methods are one-element batches.
//
// Errors map back to the query sentinels, so callers branch with
// errors.Is: ErrInvalid (the request can never succeed), ErrNotFound
// (the current unit does not hold the target), ErrUnavailable (no unit
// has completed yet — retried automatically, see WithRetries).
//
// A Client holds one or more endpoints (WithEndpoints). Transport
// failures and 503 responses fail over to the next endpoint before any
// backoff is taken; the first endpoint that answers becomes the
// preferred one for subsequent calls. Against a cluster, point the
// client at the coordinator and the nodes, in that order.
//
//	c, err := client.New(client.WithEndpoints("http://127.0.0.1:8080"))
//	...
//	top, err := c.Exceptions(ctx, client.ExceptionsRequest{K: 10})
//	trend, err := c.Trend(ctx, client.TrendRequest{CellRef: client.OCell(2, 0), K: 4})
//	reply, err := c.Batch(ctx,
//		client.SummaryRequest{},
//		client.AlertsRequest{},
//		client.FrameRequest{CellRef: client.OCell(2, 0)},
//	)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/alert"
	"repro/internal/query"
)

// The request/response model, re-exported so SDK users need only this
// package.
type (
	// Request is the typed query union; see the concrete kinds below.
	Request = query.Request
	// Kind discriminates requests on the wire.
	Kind = query.Kind
	// CellRef names one cell by levels and members.
	CellRef = query.CellRef

	// SummaryRequest asks for the unit header and per-cuboid counts.
	SummaryRequest = query.SummaryRequest
	// ExceptionsRequest asks for ranked exception cells.
	ExceptionsRequest = query.ExceptionsRequest
	// AlertsRequest asks for the unit's o-layer alerts.
	AlertsRequest = query.AlertsRequest
	// SupportersRequest asks for a cell's exception descendants.
	SupportersRequest = query.SupportersRequest
	// SliceRequest asks for the exceptions under one member.
	SliceRequest = query.SliceRequest
	// TrendRequest asks for a k-unit trend regression of an o-cell.
	TrendRequest = query.TrendRequest
	// FrameRequest asks for an o-cell's per-level tilt frame listing.
	FrameRequest = query.FrameRequest
	// ForecastRequest asks for an o-cell's extrapolated forecast and,
	// with a threshold, its time-to-threshold.
	ForecastRequest = query.ForecastRequest
	// ChangesRequest asks for cells whose recent slope diverges from
	// their longer trend, ranked by divergence score.
	ChangesRequest = query.ChangesRequest

	// Response is the typed result union.
	Response = query.Response
	// SummaryResponse answers SummaryRequest.
	SummaryResponse = query.SummaryResponse
	// CellsResponse answers ExceptionsRequest and SliceRequest.
	CellsResponse = query.CellsResponse
	// AlertsResponse answers AlertsRequest.
	AlertsResponse = query.AlertsResponse
	// SupportersResponse answers SupportersRequest.
	SupportersResponse = query.SupportersResponse
	// TrendResponse answers TrendRequest.
	TrendResponse = query.TrendResponse
	// FrameResponse answers FrameRequest.
	FrameResponse = query.FrameResponse
	// ForecastResponse answers ForecastRequest.
	ForecastResponse = query.ForecastResponse
	// ChangesResponse answers ChangesRequest.
	ChangesResponse = query.ChangesResponse
	// ChangeJSON is one ranked cell inside a ChangesResponse.
	ChangeJSON = query.ChangeJSON

	// InfoResponse is the typed GET /v1/info document.
	InfoResponse = query.InfoResponse
	// AlertEventsResponse is the typed GET /v1/alerts/events document:
	// recent alert lifecycle events, oldest first.
	AlertEventsResponse = query.AlertEventsResponse
	// AlertEvent is one lifecycle level transition inside an
	// AlertEventsResponse.
	AlertEvent = alert.EventJSON
	// NodeStatus is one node's reachability inside a coordinator's
	// InfoResponse.
	NodeStatus = query.NodeStatus
)

// The sentinel errors responses map back to; test with errors.Is.
var (
	// ErrInvalid marks requests that can never succeed (HTTP 400).
	ErrInvalid = query.ErrInvalid
	// ErrCell marks invalid cell coordinates (HTTP 400).
	ErrCell = query.ErrCell
	// ErrNotFound marks targets the current unit does not hold (HTTP 404).
	ErrNotFound = query.ErrNotFound
	// ErrUnavailable means no unit has completed yet (HTTP 503).
	ErrUnavailable = query.ErrUnavailable
)

// OCell references an o-layer cell by its members.
func OCell(members ...int32) CellRef { return query.OCell(members...) }

// Cell references a cell at explicit levels.
func Cell(levels []int, members []int32) CellRef { return query.Cell(levels, members) }

// Client is a regcube query API client. It is safe for concurrent use.
type Client struct {
	endpoints []string
	// cur is the index of the preferred endpoint — the last one that
	// answered. Calls start there and rotate on failure.
	cur     atomic.Int64
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithEndpoints sets the server base URLs (e.g.
// "http://127.0.0.1:8080"). With more than one, retriable failures —
// transport errors and 503 — fail over to the next endpoint; the first
// endpoint to answer is preferred for subsequent calls.
func WithEndpoints(addrs ...string) Option {
	return func(c *Client) { c.endpoints = append(c.endpoints, addrs...) }
}

// WithHTTPClient substitutes the underlying *http.Client (pools,
// transports, instrumentation). Its Timeout wins over WithTimeout.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout bounds each HTTP attempt (default 10s). Retries each get
// the full budget; bound the total with the context instead.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.hc.Timeout = d } }

// WithRetries sets how many extra passes over the endpoint list a
// failed call makes (default 2). Only transport errors and 503
// no-snapshot-yet responses retry — 4xx results are deterministic and
// returned immediately. With one endpoint this is the classic retry
// count; with several, each pass tries every endpoint once.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryBackoff sets the base delay between passes (default 150ms,
// doubling per pass). No delay is taken between endpoints within a
// pass — failover is immediate.
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// New builds a client from options. At least one endpoint is required:
//
//	c, err := client.New(client.WithEndpoints("http://127.0.0.1:8080"))
func New(opts ...Option) (*Client, error) {
	c := &Client{
		hc:      &http.Client{Timeout: 10 * time.Second},
		retries: 2,
		backoff: 150 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	if len(c.endpoints) == 0 {
		return nil, fmt.Errorf("client: %w: no endpoints (use WithEndpoints)", ErrInvalid)
	}
	for i, ep := range c.endpoints {
		u, err := url.Parse(ep)
		if err != nil {
			return nil, fmt.Errorf("client: endpoint URL: %w", err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("client: endpoint %q: scheme must be http or https", ep)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("client: endpoint %q: missing host", ep)
		}
		c.endpoints[i] = strings.TrimRight(ep, "/")
	}
	if c.retries < 0 {
		c.retries = 0
	}
	return c, nil
}

// NewURL builds a client for a single base URL.
//
// Deprecated: use New with WithEndpoints, which also accepts multiple
// endpoints for failover. NewURL remains as a shim for pre-cluster
// callers.
func NewURL(baseURL string, opts ...Option) (*Client, error) {
	return New(append([]Option{WithEndpoints(baseURL)}, opts...)...)
}

// Endpoints returns the configured endpoint list, normalized.
func (c *Client) Endpoints() []string {
	return append([]string(nil), c.endpoints...)
}

// Result is one request's outcome inside a batch reply: exactly one of
// Response and Err is set.
type Result struct {
	Response Response
	Err      error
}

// BatchReply is the decoded outcome of one Batch round trip. Every
// result was answered from the snapshot of the same closed unit.
type BatchReply struct {
	// Unit is the closed unit all results describe.
	Unit int64
	// UnitsDone counts closed units as of the answering snapshot.
	UnitsDone int64
	// Results are in request order.
	Results []Result
}

// Batch sends the requests as one POST /v1/query round trip and decodes
// each result by its request's kind. The returned error covers the round
// trip itself (transport, malformed batch, no snapshot after retries);
// per-request failures land in the matching Result.Err.
func (c *Client) Batch(ctx context.Context, reqs ...Request) (*BatchReply, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("client: %w: empty batch", ErrInvalid)
	}
	body, err := json.Marshal(query.BatchRequest{Queries: query.Wrap(reqs...)})
	if err != nil {
		return nil, fmt.Errorf("client: encoding batch: %w", err)
	}
	data, err := c.roundTrip(ctx, http.MethodPost, "/v1/query", body)
	if err != nil {
		return nil, err
	}
	var batch query.BatchResponse
	if err := json.Unmarshal(data, &batch); err != nil {
		return nil, fmt.Errorf("client: decoding batch reply: %w", err)
	}
	if len(batch.Results) != len(reqs) {
		return nil, fmt.Errorf("client: batch reply has %d results for %d requests",
			len(batch.Results), len(reqs))
	}
	reply := &BatchReply{Unit: batch.Unit, UnitsDone: batch.UnitsDone, Results: make([]Result, len(reqs))}
	for i, res := range batch.Results {
		resp, err := res.Decode(reqs[i].Kind())
		reply.Results[i] = Result{Response: resp, Err: err}
	}
	return reply, nil
}

// Do executes one typed request and returns its typed response.
func (c *Client) Do(ctx context.Context, req Request) (Response, error) {
	reply, err := c.Batch(ctx, req)
	if err != nil {
		return nil, err
	}
	return reply.Results[0].Response, reply.Results[0].Err
}

// Summary fetches the current unit's header, stats, and cuboid rollup.
func (c *Client) Summary(ctx context.Context) (*SummaryResponse, error) {
	return doTyped[*SummaryResponse](c, ctx, SummaryRequest{})
}

// Exceptions fetches ranked exception cells.
func (c *Client) Exceptions(ctx context.Context, req ExceptionsRequest) (*CellsResponse, error) {
	return doTyped[*CellsResponse](c, ctx, req)
}

// Alerts fetches the current unit's o-layer alerts with drill-down.
func (c *Client) Alerts(ctx context.Context) (*AlertsResponse, error) {
	return doTyped[*AlertsResponse](c, ctx, AlertsRequest{})
}

// Supporters fetches a cell's exception descendants.
func (c *Client) Supporters(ctx context.Context, req SupportersRequest) (*SupportersResponse, error) {
	return doTyped[*SupportersResponse](c, ctx, req)
}

// Slice fetches the exceptions under one member of one dimension.
func (c *Client) Slice(ctx context.Context, req SliceRequest) (*CellsResponse, error) {
	return doTyped[*CellsResponse](c, ctx, req)
}

// Trend fetches a k-unit trend regression of an o-cell.
func (c *Client) Trend(ctx context.Context, req TrendRequest) (*TrendResponse, error) {
	return doTyped[*TrendResponse](c, ctx, req)
}

// Frame fetches an o-cell's per-level tilt frame listing.
func (c *Client) Frame(ctx context.Context, req FrameRequest) (*FrameResponse, error) {
	return doTyped[*FrameResponse](c, ctx, req)
}

// Forecast fetches an o-cell's trend extrapolation: the model fitted
// over its trailing history, the predicted value at the horizon, and —
// when the request carries a threshold — the time until it is reached.
func (c *Client) Forecast(ctx context.Context, req ForecastRequest) (*ForecastResponse, error) {
	return doTyped[*ForecastResponse](c, ctx, req)
}

// Changes fetches cells whose recent slope diverges from their longer
// trend, ranked by divergence score.
func (c *Client) Changes(ctx context.Context, req ChangesRequest) (*ChangesResponse, error) {
	return doTyped[*ChangesResponse](c, ctx, req)
}

// doTyped narrows Do's union result to the kind's concrete response.
func doTyped[T Response](c *Client, ctx context.Context, req Request) (T, error) {
	var zero T
	resp, err := c.Do(ctx, req)
	if err != nil {
		return zero, err
	}
	typed, ok := resp.(T)
	if !ok {
		return zero, fmt.Errorf("client: unexpected response type %T for %s", resp, req.Kind())
	}
	return typed, nil
}

// Health is the GET /healthz liveness report.
type Health struct {
	Status        string  `json:"status"`
	Serving       bool    `json:"serving"`
	Unit          int64   `json:"unit"`
	UnitsDone     int64   `json:"unitsDone"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// Health fetches the server's liveness and serving state. It succeeds
// even before the first unit closes (Serving false, Unit -1).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	data, err := c.roundTrip(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return nil, err
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("client: decoding health: %w", err)
	}
	return &h, nil
}

// AlertEvents fetches up to k recent alert lifecycle events (k <= 0 uses
// the server default of 50), oldest first. The server answers 404 when
// alerting is not configured on the node; that maps to ErrNotFound.
func (c *Client) AlertEvents(ctx context.Context, k int) (*AlertEventsResponse, error) {
	path := "/v1/alerts/events"
	if k > 0 {
		path = fmt.Sprintf("%s?k=%d", path, k)
	}
	data, err := c.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	var resp AlertEventsResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding alert events: %w", err)
	}
	return &resp, nil
}

// Info fetches the server's GET /v1/info identity document: node id,
// role, shard count, wire and API versions, WAL watermark, and snapshot
// unit. A coordinator's document also carries per-node statuses.
func (c *Client) Info(ctx context.Context) (*InfoResponse, error) {
	data, err := c.roundTrip(ctx, http.MethodGet, "/v1/info", nil)
	if err != nil {
		return nil, err
	}
	var info InfoResponse
	if err := json.Unmarshal(data, &info); err != nil {
		return nil, fmt.Errorf("client: decoding info: %w", err)
	}
	return &info, nil
}

// roundTrip issues one HTTP request with the client's failover and
// retry policy. Attempts start at the preferred endpoint and rotate
// through the list on retriable failures (transport errors and 503, no
// delay between endpoints); after a full pass over every endpoint the
// doubling backoff applies. Everything else returns immediately, with
// non-200 statuses mapped to the query sentinels. The endpoint that
// answers becomes the preferred one.
func (c *Client) roundTrip(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	n := len(c.endpoints)
	start := int(c.cur.Load()) % n
	maxAttempts := (c.retries + 1) * n
	var lastErr error
	for attempt := 0; ; attempt++ {
		idx := (start + attempt) % n
		data, err, retriable := c.attempt(ctx, c.endpoints[idx], method, path, body)
		if err == nil {
			c.cur.Store(int64(idx))
			return data, nil
		}
		if !retriable || attempt+1 >= maxAttempts {
			return nil, err
		}
		lastErr = err
		if (attempt+1)%n != 0 {
			// More endpoints left in this pass — fail over immediately.
			if ctx.Err() != nil {
				return nil, fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: %w (last error: %v)", ctx.Err(), lastErr)
		case <-time.After(retryDelay(c.backoff, (attempt+1)/n-1)):
		}
	}
}

// maxRetryDelay caps the doubling backoff so arbitrarily high retry
// counts wait, instead of the shift overflowing into a hot spin.
const maxRetryDelay = 30 * time.Second

// retryDelay is base·2^attempt clamped to maxRetryDelay.
func retryDelay(base time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < maxRetryDelay; i++ {
		d *= 2
	}
	if d > maxRetryDelay || d <= 0 {
		d = maxRetryDelay
	}
	return d
}

func (c *Client) attempt(ctx context.Context, base, method, path string, body []byte) (data []byte, err error, retriable bool) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err), false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport errors (refused, reset, timeout) are worth retrying;
		// a canceled context is not.
		return nil, fmt.Errorf("client: %w", err), ctx.Err() == nil
	}
	defer resp.Body.Close()
	data, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err), true
	}
	if resp.StatusCode == http.StatusOK {
		return data, nil, false
	}
	serr := query.StatusError(resp.StatusCode, errorBody(data))
	return nil, serr, errors.Is(serr, ErrUnavailable)
}

// errorBody extracts the server's {"error": "..."} message, falling back
// to the raw body.
func errorBody(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(data))
}
