package client_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/client"
	"repro/internal/alert"
	"repro/internal/exception"
	"repro/internal/serve"
	"repro/internal/stream"
)

// alertTestServer runs an engine with the alert lifecycle consuming its
// snapshot bus (a rising feed, so cells escalate) and returns a client
// for the HTTP server with the alert surfaces attached.
func alertTestServer(t *testing.T) (*client.Client, *httptest.Server) {
	t.Helper()
	schema := testSchema(t)
	eng, err := stream.NewEngine(stream.Config{
		Schema:           schema,
		TicksPerUnit:     4,
		Threshold:        exception.Global(0.5),
		PublishSnapshots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := eng.Subscribe(16)
	t.Cleanup(sub.Close)
	mgr, err := alert.New(alert.Config{Schema: schema, Warn: 0.5, Crit: 4, HoldUnits: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	for tick := int64(0); tick <= 12; tick++ {
		for a := int32(0); a < 4; a++ {
			for b := int32(0); b < 4; b++ {
				if _, err := eng.Ingest([]int32{a, b}, tick, float64(tick)*float64(a+2*b+1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for {
		select {
		case s := <-sub.C():
			mgr.Observe(s)
			continue
		default:
		}
		break
	}
	srv := serve.New(eng, schema)
	srv.SetAlerts(mgr)
	srv.SetBusDropped(eng.BusDropped)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := client.New(client.WithEndpoints(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// TestClientAlertEventsMatchesGET pins the typed method to the GET
// endpoint: same body, same types.
func TestClientAlertEventsMatchesGET(t *testing.T) {
	c, ts := alertTestServer(t)
	got, err := c.AlertEvents(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count == 0 || got.Count != len(got.Events) {
		t.Fatalf("events = %+v, want a consistent non-empty list", got)
	}
	var want client.AlertEventsResponse
	getJSON(t, ts, "/v1/alerts/events", &want)
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("client AlertEvents = %+v\nGET body = %+v", *got, want)
	}
	capped, err := c.AlertEvents(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Count != 1 || capped.Events[0].Seq != got.Events[len(got.Events)-1].Seq {
		t.Fatalf("k=1 = %+v, want just the newest event", capped)
	}
}

// TestClientAlertEventsNotConfigured maps the unconfigured node's 404 to
// the ErrNotFound sentinel.
func TestClientAlertEventsNotConfigured(t *testing.T) {
	c, _ := testServer(t, 2, nil)
	_, err := c.AlertEvents(context.Background(), 0)
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}
