package regcube

import (
	"bytes"
	"math"
	"testing"
)

// TestFullPipelineIntegration drives the complete production workflow
// through the public API only: generate → persist to CSV → reload → cube
// with all four engines → navigate → persist results → reload → verify.
func TestFullPipelineIntegration(t *testing.T) {
	// 1. Generate a workload and persist it.
	spec, err := ParseDatasetSpec("D3L2C4T1K")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := GenerateDataset(DatasetConfig{Spec: spec, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := WriteDatasetCSV(&csvBuf, ds); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and verify the reload cubes identically to the original.
	inputs, err := ReadDatasetCSV(&csvBuf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	thr := GlobalThreshold(ds.CalibrateThreshold(0.02))
	orig, err := MOCubing(ds.Schema, ds.Inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := MOCubing(ds.Schema, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Exceptions) != len(reloaded.Exceptions) {
		t.Fatalf("CSV round trip changed exceptions: %d vs %d",
			len(orig.Exceptions), len(reloaded.Exceptions))
	}

	// 3. All engines agree.
	lattice := NewLattice(ds.Schema)
	pp, err := PopularPath(ds.Schema, inputs, thr, lattice.DefaultPath())
	if err != nil {
		t.Fatal(err)
	}
	buc, err := BUCCubing(ds.Schema, inputs, thr, BUCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := ArrayCubing(ds.Schema, inputs, thr)
	if err != nil {
		t.Fatal(err)
	}
	if len(buc.Exceptions) != len(orig.Exceptions) || len(arr.Exceptions) != len(orig.Exceptions) {
		t.Fatal("engines disagree on exception counts")
	}
	for key, isb := range pp.Exceptions {
		want, ok := orig.Exceptions[key]
		if !ok || math.Abs(want.Slope-isb.Slope) > 1e-9 {
			t.Fatalf("popular-path exception %v not confirmed", key)
		}
	}

	// 4. Navigate: every supporter of the steepest o-cell is a genuine
	// exception descendant.
	view := NewResultView(orig)
	obs := view.TopObservations(1)
	if len(obs) != 1 {
		t.Fatal("no observation deck")
	}
	for _, sup := range view.Supporters(obs[0].Key) {
		if _, ok := orig.Exceptions[sup.Key]; !ok {
			t.Fatalf("supporter %v is not a retained exception", sup.Key)
		}
	}

	// 5. Persist the result and reload; navigation still works.
	var resBuf bytes.Buffer
	if err := WriteResult(&resBuf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&resBuf, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	view2 := NewResultView(back)
	top1 := view.TopExceptions(10)
	top2 := view2.TopExceptions(10)
	if len(top1) != len(top2) {
		t.Fatal("reloaded view ranks differently")
	}
	for i := range top1 {
		if top1[i].Key != top2[i].Key {
			t.Fatalf("rank %d differs after persistence", i)
		}
	}
}

// TestStreamToBatchToDeltaIntegration drives the online engine, then
// cross-checks its per-unit output against batch DeltaCubing.
func TestStreamToBatchToDeltaIntegration(t *testing.T) {
	h, err := NewFanoutHierarchy("m", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := NewSchema(Dimension{Name: "m", Hierarchy: h, MLevel: 2, OLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewStreamEngine(StreamConfig{
		Schema:       schema,
		TicksPerUnit: 6,
		Threshold:    GlobalThreshold(1e9),
		Delta:        &DeltaDetector{MinSlopeChange: 0.5},
		DeltaDrill:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unit 0: flat. Unit 1: cell 4 ramps.
	var unit1Delta *DeltaResult
	for tick := int64(0); tick < 12; tick++ {
		for m := int32(0); m < 9; m++ {
			v := 1.0
			if tick >= 6 && m == 4 {
				v = float64(tick-6) * 2
			}
			closed, err := eng.Ingest([]int32{m}, tick, v)
			if err != nil {
				t.Fatal(err)
			}
			for range closed {
			}
		}
	}
	final, err := eng.Flush()
	if err != nil {
		t.Fatal(err)
	}
	unit1Delta = final.Delta
	if unit1Delta == nil {
		t.Fatal("unit 1 should carry a delta cube")
	}
	mKey := NewCellKeyForTest(schema, 4)
	dc, ok := unit1Delta.Exceptions[mKey]
	if !ok {
		t.Fatalf("ramping cell missing from delta exceptions: %+v", unit1Delta.Exceptions)
	}
	if dc.SlopeChange() < 1.5 {
		t.Fatalf("slope change = %g", dc.SlopeChange())
	}
}

// NewCellKeyForTest builds an m-layer cell key (exported-test helper).
func NewCellKeyForTest(s *Schema, member int32) CellKey {
	key := CellKey{Cuboid: s.MLayer()}
	key.Members[0] = member
	return key
}
