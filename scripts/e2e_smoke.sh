#!/usr/bin/env bash
# End-to-end smoke test for the serving pipeline: pipe `datagen -stream`
# into `streamd -listen`, query every HTTP endpoint mid-stream, then send
# SIGINT and assert the graceful flush — the full binary path the unit
# tests skip. A second leg kill -9s a WAL-backed streamd mid-stream,
# restarts it, queries the recovered state, and runs a `regcube replay`
# what-if over the captured log. The binary legs re-run the pipe with
# `-format=binary` framed batches: checkpoints must be bitwise-equal to
# the text-fed ones, mid-stream queries must serve, and a kill -9'd
# binary-fed WAL must replay deterministically. The cluster leg runs the
# 4-process topology — four streamd ingest nodes behind regcube-router's
# scatter tier and scatter-gather coordinator — queries the coordinator
# mid-stream, and asserts the merged per-node checkpoints are
# bitwise-equal to a single engine over the identical stream. Run from
# anywhere; needs go and curl.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
workdir=$(mktemp -d)
spid=""
dpid=""
rpid=""
akpid=""
npids=()
cleanup() {
  [ -n "$spid" ] && kill "$spid" 2>/dev/null || true
  [ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
  [ -n "$rpid" ] && kill "$rpid" 2>/dev/null || true
  [ -n "$akpid" ] && kill "$akpid" 2>/dev/null || true
  for p in "${npids[@]:-}"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir" ./cmd/datagen ./cmd/streamd ./cmd/queryprobe ./cmd/regcube ./cmd/regcube-router ./cmd/alertsink

fifo="$workdir/stream.fifo"
mkfifo "$fifo"

echo "== start streamd -listen $ADDR (4 shards, tilted history)"
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -tilt calendar \
  -listen "$ADDR" -checkpoint "$workdir/state.json" \
  < "$fifo" > "$workdir/out.log" 2>&1 &
spid=$!

echo "== start datagen -stream (paced, with query load)"
# Enough ticks that the stream outlives the whole query phase even when a
# loaded CI box makes the retry loops below crawl — SIGINT ends the run
# long before the stream does, so the tick budget costs no wall time.
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 60000 -pace 5ms \
  -query "http://$ADDR" -qinterval 20ms \
  > "$fifo" 2> "$workdir/datagen.log" &
dpid=$!

# fetch retries a transiently failing endpoint (server mid-boundary, load
# spikes on a busy CI box) instead of failing the whole smoke on one shot;
# each attempt has its own curl timeout and the loop is bounded at ~10s.
fetch() {
  local path=$1 body i
  for i in $(seq 1 20); do
    if body=$(curl -fsS --max-time 5 "http://$ADDR$path" 2>/dev/null); then
      printf '%s' "$body"
      return 0
    fi
    sleep 0.5
  done
  echo "fetch $path: no success after 20 attempts" >&2
  return 1
}

echo "== wait for the first completed unit"
ready=""
for _ in $(seq 1 150); do
  if h=$(fetch /healthz 2>/dev/null) && grep -q '"unitsDone":[1-9]' <<<"$h"; then
    ready=yes
    break
  fi
  sleep 0.2
done
if [ -z "$ready" ]; then
  echo "FAIL: server never served a completed unit" >&2
  cat "$workdir/out.log" >&2
  exit 1
fi
echo "   healthz: $h"

assert_json() { # path, required substring
  local body
  if ! body=$(fetch "$1"); then
    echo "FAIL: GET $1 never succeeded" >&2
    exit 1
  fi
  if [ -z "$body" ] || ! grep -q "$2" <<<"$body"; then
    echo "FAIL: GET $1 returned unexpected body: $body" >&2
    exit 1
  fi
  echo "   OK GET $1 (${#body} bytes)"
}

echo "== query every endpoint mid-stream"
assert_json '/v1/exceptions?k=5'              '"cells":\['
assert_json '/v1/exceptions?k=3&order=key'    '"cells":\['
assert_json '/v1/summary'                     '"cuboids":\['
assert_json '/v1/alerts'                      '"alerts":\['
assert_json '/v1/supporters?members=0,0'      '"supporters":'
assert_json '/v1/slice?dim=0&level=1&member=0' '"cells":'
assert_json '/v1/trend?members=0,0&k=1'       '"points":\['
# Tilted endpoints: the per-level frame listing, and an hour-granularity
# trend once 4 quarters have closed (fetch retries until they have).
assert_json '/v1/frame?members=0,0'           '"tilted":true'
assert_json '/v1/trend?members=0,0&k=1&level=1' '"level":"hour"'
# Errors are JSON too — including the uniform lower-bound validation.
body=$(curl -sS --max-time 5 "http://$ADDR/v1/slice?dim=99&member=0")
grep -q '"error"' <<<"$body" || { echo "FAIL: bad request not JSON: $body" >&2; exit 1; }
body=$(curl -sS --max-time 5 "http://$ADDR/v1/exceptions?k=0")
grep -q 'below minimum' <<<"$body" || { echo "FAIL: k=0 not rejected: $body" >&2; exit 1; }
echo "   OK bad requests rejected as JSON errors"
fetch /metrics | grep -q 'regcube_http_requests_total' \
  || { echo "FAIL: /metrics missing counters" >&2; exit 1; }
echo "   OK GET /metrics"

echo "== POST /v1/query: one batch, four kinds plus a bad sub-request"
batch='{"queries":[{"kind":"summary"},{"kind":"exceptions","k":3},{"kind":"alerts"},{"kind":"frame","members":[0,0]},{"kind":"slice","dim":99,"member":0}]}'
body=""
for _ in $(seq 1 10); do
  if body=$(curl -fsS --max-time 5 -X POST -H 'Content-Type: application/json' \
      -d "$batch" "http://$ADDR/v1/query" 2>/dev/null) && [ -n "$body" ]; then
    break
  fi
  sleep 0.5
done
grep -q '"results":\[' <<<"$body" || { echo "FAIL: batch returned no results: $body" >&2; exit 1; }
# `|| true` keeps a zero-match grep from tripping set -e before the
# FAIL diagnostic below can report.
oks=$(grep -o '"ok":true' <<<"$body" | wc -l || true)
[ "$oks" -eq 4 ] || { echo "FAIL: batch had $oks ok results, want 4: $body" >&2; exit 1; }
grep -q '"status":400' <<<"$body" || { echo "FAIL: bad sub-request not 400 in batch: $body" >&2; exit 1; }
echo "   OK POST /v1/query ($oks ok + 1 typed error, ${#body} bytes)"
# Method discipline: GET on the batch endpoint (and POST on a read
# endpoint) must 405 with an Allow header.
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/query")
[ "$code" = "405" ] || { echo "FAIL: GET /v1/query = $code, want 405" >&2; exit 1; }
allow=$(curl -s -o /dev/null -D - "http://$ADDR/v1/query" | grep -i '^allow:' || true)
grep -q 'POST' <<<"$allow" || { echo "FAIL: GET /v1/query Allow header: $allow" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/summary")
[ "$code" = "405" ] || { echo "FAIL: POST /v1/summary = $code, want 405" >&2; exit 1; }
echo "   OK method discipline (405 + Allow)"

echo "== client SDK smoke probe (cmd/queryprobe)"
"$workdir/queryprobe" -addr "http://$ADDR" -cell 0,0 -timeout 60s \
  || { echo "FAIL: queryprobe failed" >&2; exit 1; }

echo "== SIGINT mid-stream: graceful flush + checkpoint + shutdown"
kill -INT "$spid"
rc=0
wait "$spid" || rc=$?
spid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: streamd exited $rc after SIGINT" >&2
  cat "$workdir/out.log" >&2
  exit 1
fi
grep -q '# signal: flushing final unit' "$workdir/out.log" \
  || { echo "FAIL: no signal banner in output" >&2; tail "$workdir/out.log" >&2; exit 1; }
grep -qE '^# [0-9]+ records, [0-9]+ units$' "$workdir/out.log" \
  || { echo "FAIL: no final summary in output" >&2; tail "$workdir/out.log" >&2; exit 1; }
[ -s "$workdir/state.json" ] || { echo "FAIL: checkpoint not written" >&2; exit 1; }
kill "$dpid" 2>/dev/null || true
dpid=""

echo "== resume the v3 checkpoint tilted, then flat"
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 2 \
  -tilt calendar \
  -checkpoint "$workdir/state.json" < /dev/null > "$workdir/resume.log" 2>&1
grep -q '# resumed at unit' "$workdir/resume.log" \
  || { echo "FAIL: no tilted resume banner" >&2; cat "$workdir/resume.log" >&2; exit 1; }
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 1 \
  -checkpoint "$workdir/state.json" < /dev/null > "$workdir/resume-flat.log" 2>&1
grep -q '# resumed at unit' "$workdir/resume-flat.log" \
  || { echo "FAIL: no flat resume banner" >&2; cat "$workdir/resume-flat.log" >&2; exit 1; }

echo "== WAL crash leg: kill -9 mid-stream, restart, replay, query"
ADDR=127.0.0.1:18081
waldir="$workdir/wal"
walcp="$workdir/wal-state.json"
fifo2="$workdir/wal.fifo"
mkfifo "$fifo2"
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 60000 -pace 1ms \
  > "$fifo2" 2>/dev/null &
dpid=$!
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -wal-dir "$waldir" -wal-sync batch -checkpoint "$walcp" \
  < "$fifo2" > "$workdir/wal-crash.log" 2>&1 &
spid=$!
sleep 2.5
kill -9 "$spid"
wait "$spid" 2>/dev/null || true
spid=""
kill "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""
ls "$waldir"/wal-*.seg >/dev/null 2>&1 \
  || { echo "FAIL: no WAL segments written before the crash" >&2; exit 1; }

echo "== restart on the crashed WAL, keep streaming, query recovered state"
fifo3="$workdir/wal2.fifo"
mkfifo "$fifo3"
# The fresh generator restarts ticks at 0, which the recovered engine is
# long past; shift them far beyond anything the crashed run can have
# reached (<= 2.5s / 1ms pace ≈ 2500 ticks, with generous slop). The
# engine zero-fills the empty units in between, as for any quiet stream.
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 60000 -pace 5ms 2>/dev/null \
  | awk -F, -v OFS=, '{ $1 += 50000; print }' > "$fifo3" &
dpid=$!
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -wal-dir "$waldir" -wal-sync batch -checkpoint "$walcp" \
  -listen "$ADDR" \
  < "$fifo3" > "$workdir/wal-restart.log" 2>&1 &
spid=$!
ready=""
for _ in $(seq 1 150); do
  if h=$(fetch /healthz 2>/dev/null) && grep -q '"unitsDone":[1-9]' <<<"$h"; then
    ready=yes
    break
  fi
  sleep 0.2
done
if [ -z "$ready" ]; then
  echo "FAIL: restarted server never served a completed unit" >&2
  cat "$workdir/wal-restart.log" >&2
  exit 1
fi
grep -q '# wal: replayed' "$workdir/wal-restart.log" \
  || { echo "FAIL: restart did not replay the WAL" >&2; cat "$workdir/wal-restart.log" >&2; exit 1; }
echo "   $(grep '# wal: replayed' "$workdir/wal-restart.log")"
assert_json '/v1/summary'        '"cuboids":\['
assert_json '/v1/exceptions?k=3' '"cells":\['
kill -INT "$spid"
wait "$spid" || { echo "FAIL: restarted streamd exited non-zero" >&2; cat "$workdir/wal-restart.log" >&2; exit 1; }
spid=""
kill "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

echo "== regcube replay: what-if the same log through 2 shards"
"$workdir/regcube" replay -wal-dir "$waldir" -spec D2L2C4 -unit 15 \
  -threshold 0.2 -shards 2 -quiet -checkpoint "$workdir/whatif.json" \
  > "$workdir/whatif.log" 2>&1 \
  || { echo "FAIL: regcube replay failed" >&2; cat "$workdir/whatif.log" >&2; exit 1; }
grep -q '# replayed [1-9][0-9]* records' "$workdir/whatif.log" \
  || { echo "FAIL: replay summary missing" >&2; cat "$workdir/whatif.log" >&2; exit 1; }
echo "   $(grep '# replayed' "$workdir/whatif.log")"
[ -s "$workdir/whatif.json" ] || { echo "FAIL: what-if checkpoint not written" >&2; exit 1; }
# The what-if checkpoint is a real checkpoint: streamd resumes from it.
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 2 \
  -checkpoint "$workdir/whatif.json" < /dev/null > "$workdir/whatif-resume.log" 2>&1
grep -q '# resumed at unit' "$workdir/whatif-resume.log" \
  || { echo "FAIL: no resume banner from what-if checkpoint" >&2; cat "$workdir/whatif-resume.log" >&2; exit 1; }

echo "== binary ingest leg: text-fed and binary-fed checkpoints are bitwise-equal"
# Same seed, same spec, both encodings of the same records; the engines
# behind them must land on byte-identical checkpoints.
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 120 -seed 7 \
  > "$workdir/eq.txt" 2>/dev/null
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 120 -seed 7 -format=binary \
  > "$workdir/eq.bin" 2>/dev/null
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -checkpoint "$workdir/eq-text.json" < "$workdir/eq.txt" > /dev/null 2>&1
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -checkpoint "$workdir/eq-bin.json" < "$workdir/eq.bin" > /dev/null 2>&1
cmp "$workdir/eq-text.json" "$workdir/eq-bin.json" \
  || { echo "FAIL: binary-fed checkpoint differs from text-fed" >&2; exit 1; }
echo "   OK checkpoints bitwise-equal ($(wc -c < "$workdir/eq-text.json") bytes)"

echo "== binary serve leg: framed pipe, mid-stream queries"
ADDR=127.0.0.1:18082
fifo4="$workdir/bin.fifo"
mkfifo "$fifo4"
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 60000 -pace 5ms -format=binary \
  > "$fifo4" 2>/dev/null &
dpid=$!
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -listen "$ADDR" -checkpoint "$workdir/bin-state.json" \
  < "$fifo4" > "$workdir/bin.log" 2>&1 &
spid=$!
ready=""
for _ in $(seq 1 150); do
  if h=$(fetch /healthz 2>/dev/null) && grep -q '"unitsDone":[1-9]' <<<"$h"; then
    ready=yes
    break
  fi
  sleep 0.2
done
if [ -z "$ready" ]; then
  echo "FAIL: binary-fed server never served a completed unit" >&2
  cat "$workdir/bin.log" >&2
  exit 1
fi
assert_json '/v1/summary'        '"cuboids":\['
assert_json '/v1/exceptions?k=3' '"cells":\['
# The ingest counters must attribute this stream to the binary decoder.
fetch /metrics | grep -q 'regcube_ingest_records_total{format="binary",source="stdin"} [1-9]' \
  || { echo "FAIL: /metrics missing binary ingest counters" >&2; exit 1; }
echo "   OK binary ingest counters live"
kill -INT "$spid"
wait "$spid" || { echo "FAIL: binary-fed streamd exited non-zero" >&2; cat "$workdir/bin.log" >&2; exit 1; }
spid=""
kill "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""

echo "== binary WAL crash leg: kill -9 mid-frame, replay is bitwise-deterministic"
binwal="$workdir/bin-wal"
fifo5="$workdir/bin-wal.fifo"
mkfifo "$fifo5"
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 60000 -pace 1ms -format=binary \
  > "$fifo5" 2>/dev/null &
dpid=$!
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -wal-dir "$binwal" -wal-sync batch \
  < "$fifo5" > "$workdir/bin-crash.log" 2>&1 &
spid=$!
sleep 2.5
kill -9 "$spid"
wait "$spid" 2>/dev/null || true
spid=""
kill "$dpid" 2>/dev/null || true
wait "$dpid" 2>/dev/null || true
dpid=""
ls "$binwal"/wal-*.seg >/dev/null 2>&1 \
  || { echo "FAIL: no WAL segments from the binary-fed crash" >&2; exit 1; }
# Replaying the torn log twice must land on byte-identical checkpoints —
# recovery of a binary-fed stream is exact, not merely plausible.
"$workdir/regcube" replay -wal-dir "$binwal" -spec D2L2C4 -unit 15 \
  -threshold 0.2 -shards 4 -quiet -checkpoint "$workdir/bin-replay1.json" \
  > "$workdir/bin-replay.log" 2>&1 \
  || { echo "FAIL: replay of binary-fed WAL failed" >&2; cat "$workdir/bin-replay.log" >&2; exit 1; }
grep -q '# replayed [1-9][0-9]* records' "$workdir/bin-replay.log" \
  || { echo "FAIL: binary replay summary missing" >&2; cat "$workdir/bin-replay.log" >&2; exit 1; }
echo "   $(grep '# replayed' "$workdir/bin-replay.log")"
"$workdir/regcube" replay -wal-dir "$binwal" -spec D2L2C4 -unit 15 \
  -threshold 0.2 -shards 4 -quiet -checkpoint "$workdir/bin-replay2.json" \
  > /dev/null 2>&1
cmp "$workdir/bin-replay1.json" "$workdir/bin-replay2.json" \
  || { echo "FAIL: two replays of the same WAL differ" >&2; exit 1; }
echo "   OK replay checkpoints bitwise-equal"

echo "== alert leg: forced breach -> one dedup'd crit + one recovery via webhook"
ADDR=127.0.0.1:18083
SINK=127.0.0.1:18084
"$workdir/alertsink" -listen "$SINK" > "$workdir/sink.log" 2>&1 &
akpid=$!
fifo6="$workdir/alert.fifo"
mkfifo "$fifo6"
# High engine threshold keeps the exception drill-down empty, so the only
# alert candidates are o-layer cells; -alert-hold 2 means the recovery
# needs two consecutive quiet units before it fires.
"$workdir/streamd" -spec D2L2C4 -unit 4 -threshold 1000 -shards 4 \
  -listen "$ADDR" \
  -alert-warn 2 -alert-crit 5 -alert-hold 2 -alert-webhook "http://$SINK" \
  < "$fifo6" > "$workdir/alert.log" 2>&1 &
spid=$!
# Hold the fifo's write end open past the feed so EOF arrives only after
# the mid-stream queries below.
exec 9> "$fifo6"
# Cell (0,0), slope 10 for units 0-2: one immediate ok->crit at unit 0,
# then dedup'd silence. Flat from tick 12 on: slope 0, hold counts units
# 3 and 4, the crit->ok recovery fires at unit 4.
for t in $(seq 0 11); do echo "$t,0,0,$((t * 10))" >&9; done
for t in $(seq 12 27); do echo "$t,0,0,110" >&9; done
ev=""
for _ in $(seq 1 100); do
  if ev=$(fetch '/v1/alerts/events' 2>/dev/null) && grep -q '"to":"ok"' <<<"$ev"; then
    break
  fi
  ev=""
  sleep 0.1
done
[ -n "$ev" ] || { echo "FAIL: recovery never reached /v1/alerts/events" >&2; cat "$workdir/alert.log" >&2; exit 1; }
grep -q '"to":"crit"' <<<"$ev" || { echo "FAIL: events missing the crit escalation: $ev" >&2; exit 1; }
grep -q '"count":2' <<<"$ev"   || { echo "FAIL: want exactly 2 events (dedup + hold): $ev" >&2; exit 1; }
echo "   OK GET /v1/alerts/events (1 crit + 1 recovery)"
# Alert metrics are live on the same server.
fetch /metrics | grep -q 'regcube_alert_events_total{level="crit",topic="olayer"} 1' \
  || { echo "FAIL: /metrics missing the crit event counter" >&2; exit 1; }
echo "   OK /metrics alert counters"
exec 9>&-   # EOF: the ordered shutdown drains the alert pipeline
wait "$spid" || { echo "FAIL: alerting streamd exited non-zero" >&2; cat "$workdir/alert.log" >&2; exit 1; }
spid=""
# The webhook saw exactly the dedup'd pair, in order.
crits=$(grep -c '"to":"crit"' "$workdir/sink.log" || true)
recov=$(grep -c '"to":"ok"' "$workdir/sink.log" || true)
if [ "$crits" -ne 1 ] || [ "$recov" -ne 1 ]; then
  echo "FAIL: webhook saw $crits crit + $recov recovery events, want exactly 1 + 1" >&2
  cat "$workdir/sink.log" >&2
  exit 1
fi
echo "   OK webhook received 1 dedup'd crit + 1 recovery"
# The log sink printed the same pair.
[ "$(grep -c 'ALERTEVENT' "$workdir/alert.log" || true)" -eq 2 ] \
  || { echo "FAIL: ALERTEVENT lines != 2" >&2; cat "$workdir/alert.log" >&2; exit 1; }
kill "$akpid" 2>/dev/null || true
wait "$akpid" 2>/dev/null || true
akpid=""

echo "== forecast leg: ramp toward threshold -> willBreach mid-stream + predictive alert"
ADDR=127.0.0.1:18085
SINK=127.0.0.1:18086
"$workdir/alertsink" -listen "$SINK" > "$workdir/fsink.log" 2>&1 &
akpid=$!
fifo7="$workdir/forecast.fifo"
mkfifo "$fifo7"
# Forecast-only node: no -alert-crit, so the slope topics stay silent and
# every event below is the predictive topic. The flag pair doubles as the
# GET-shim defaults, so /v1/forecast needs no query parameters.
"$workdir/streamd" -spec D2L2C4 -unit 4 -threshold 1000 -shards 4 \
  -listen "$ADDR" \
  -forecast-threshold 1000 -forecast-horizon 8 \
  -alert-webhook "http://$SINK" \
  < "$fifo7" > "$workdir/forecast.log" 2>&1 &
spid=$!
exec 9> "$fifo7"
# Cell (0,0) rises 10/tick toward 1000: at unit 23 (ticks 92-95) the fitted
# line sits at 950, five ticks from the threshold — inside the 8-tick
# horizon, so the forecast goes crit while the measured value is still 5%
# below the line it is forecast to cross.
for t in $(seq 0 99); do echo "$t,0,0,$((t * 10))" >&9; done
fc=""
for _ in $(seq 1 100); do
  if fc=$(fetch '/v1/forecast?members=0,0' 2>/dev/null) && grep -q '"willBreach":true' <<<"$fc"; then
    break
  fi
  fc=""
  sleep 0.1
done
[ -n "$fc" ] || { echo "FAIL: /v1/forecast never predicted the breach" >&2; cat "$workdir/forecast.log" >&2; exit 1; }
grep -q '"ticksToThreshold":' <<<"$fc" || { echo "FAIL: forecast missing ticksToThreshold: $fc" >&2; exit 1; }
echo "   OK GET /v1/forecast (flag defaults, willBreach mid-stream)"
assert_json '/v1/changes' '"cells":'
ev=""
for _ in $(seq 1 100); do
  if ev=$(fetch '/v1/alerts/events' 2>/dev/null) && grep -q '"topic":"forecast"' <<<"$ev"; then
    break
  fi
  ev=""
  sleep 0.1
done
[ -n "$ev" ] || { echo "FAIL: no forecast-topic event on /v1/alerts/events" >&2; cat "$workdir/forecast.log" >&2; exit 1; }
echo "   OK GET /v1/alerts/events (forecast topic live)"
exec 9>&-   # EOF: ordered shutdown drains the alert pipeline
wait "$spid" || { echo "FAIL: forecasting streamd exited non-zero" >&2; cat "$workdir/forecast.log" >&2; exit 1; }
spid=""
fevents=$(grep -c '"topic":"forecast"' "$workdir/fsink.log" || true)
[ "$fevents" -ge 1 ] || { echo "FAIL: webhook saw $fevents forecast events, want >= 1" >&2; cat "$workdir/fsink.log" >&2; exit 1; }
slope_events=$(grep -c '"topic":"olayer"\|"topic":"drill"' "$workdir/fsink.log" || true)
[ "$slope_events" -eq 0 ] || { echo "FAIL: forecast-only node emitted $slope_events slope-topic events" >&2; cat "$workdir/fsink.log" >&2; exit 1; }
echo "   OK webhook received $fevents forecast event(s), no slope-topic noise"
kill "$akpid" 2>/dev/null || true
wait "$akpid" 2>/dev/null || true
akpid=""

echo "== cluster leg: 4 streamd nodes + router, scatter-gather coordinator, merged checkpoint"
CADDR=127.0.0.1:18090
node_ing=(127.0.0.1:19091 127.0.0.1:19092 127.0.0.1:19093 127.0.0.1:19094)
node_api=(127.0.0.1:18091 127.0.0.1:18092 127.0.0.1:18093 127.0.0.1:18094)
npids=()
for i in 0 1 2 3; do
  "$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 1 \
    -ingest-listen "${node_ing[$i]}" -listen "${node_api[$i]}" -node-id "node-$i" \
    -checkpoint "$workdir/node$i.json" > "$workdir/node$i.log" 2>&1 &
  npids+=($!)
done
# Wait for every node's ingest listener before pointing the router at them.
for i in 0 1 2 3; do
  ok=""
  for _ in $(seq 1 50); do
    if grep -q '# ingest listening' "$workdir/node$i.log"; then ok=yes; break; fi
    sleep 0.1
  done
  [ -n "$ok" ] || { echo "FAIL: node $i never listened" >&2; cat "$workdir/node$i.log" >&2; exit 1; }
done
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 1200 -seed 7 -pace 5ms -format=binary 2>/dev/null \
  | "$workdir/regcube-router" -spec D2L2C4 -unit 15 \
      -nodes "$(IFS=,; echo "${node_ing[*]}")" \
      -node-api "$(IFS=,; echo "${node_api[*]/#/http://}")" \
      -listen "$CADDR" -node-id coord > "$workdir/router.log" 2>&1 &
rpid=$!
ADDR=$CADDR
ready=""
for _ in $(seq 1 150); do
  if h=$(fetch /healthz 2>/dev/null) && grep -q '"unitsDone":[1-9]' <<<"$h"; then
    ready=yes
    break
  fi
  sleep 0.2
done
if [ -z "$ready" ]; then
  echo "FAIL: coordinator never served a completed unit" >&2
  cat "$workdir/router.log" >&2; cat "$workdir/node0.log" >&2
  exit 1
fi
echo "   coordinator healthz: $h"
# Mid-stream scatter-gather queries and the cluster-wide info document.
assert_json '/v1/exceptions?k=5' '"cells":\['
assert_json '/v1/alerts'         '"alerts":\['
# The predictive endpoints answer from the coordinator's merged snapshot.
assert_json '/v1/forecast?members=0,0&horizon=8&threshold=1000' '"predicted":'
assert_json '/v1/changes'        '"cells":'
info=$(fetch /v1/info)
grep -q '"role":"coordinator"' <<<"$info" || { echo "FAIL: /v1/info not a coordinator: $info" >&2; exit 1; }
grep -q '"nodeId":"node-3"' <<<"$info"    || { echo "FAIL: /v1/info missing node-3: $info" >&2; exit 1; }
reach=$(grep -o '"reachable":true' <<<"$info" | wc -l || true)
[ "$reach" -eq 4 ] || { echo "FAIL: /v1/info reports $reach reachable nodes, want 4: $info" >&2; exit 1; }
echo "   OK GET /v1/info (coordinator, 4 reachable nodes)"
# Node-side ingest accounting: records arrived over TCP, not stdin. The
# partitioner may legitimately leave a node cold on a small schema, so
# count busy nodes rather than pinning one.
busy=0
for i in 0 1 2 3; do
  nm=$(curl -fsS --max-time 5 "http://${node_api[$i]}/metrics")
  if grep -q 'regcube_ingest_records_total{format="binary",source="tcp"} [1-9]' <<<"$nm"; then
    busy=$((busy + 1))
  fi
  if grep -q 'source="stdin"} [1-9]' <<<"$nm"; then
    echo "FAIL: node $i counted stdin-sourced records on a TCP-only run: $nm" >&2; exit 1
  fi
done
[ "$busy" -ge 2 ] || { echo "FAIL: only $busy nodes counted tcp-sourced records" >&2; exit 1; }
echo "   OK node /metrics (source=\"tcp\" ingest counters on $busy nodes)"
# Let the stream finish, then take the whole cluster down gracefully.
done_route=""
for _ in $(seq 1 300); do
  if grep -q '^# routed' "$workdir/router.log"; then done_route=yes; break; fi
  sleep 0.2
done
[ -n "$done_route" ] || { echo "FAIL: router never finished the stream" >&2; cat "$workdir/router.log" >&2; exit 1; }
echo "   $(grep '^# routed' "$workdir/router.log")"
kill -INT "$rpid"
wait "$rpid" || { echo "FAIL: router exited non-zero" >&2; cat "$workdir/router.log" >&2; exit 1; }
rpid=""
for i in 0 1 2 3; do
  kill -INT "${npids[$i]}"
  wait "${npids[$i]}" || { echo "FAIL: node $i exited non-zero" >&2; cat "$workdir/node$i.log" >&2; exit 1; }
done
npids=()
# Reference: one single-shard engine over the identical stream.
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 1200 -seed 7 -format=binary 2>/dev/null \
  | "$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 1 \
      -checkpoint "$workdir/cluster-single.json" > /dev/null 2>&1
"$workdir/regcube" merge -o "$workdir/cluster-merged.json" \
  "$workdir/node0.json" "$workdir/node1.json" "$workdir/node2.json" "$workdir/node3.json" \
  2> "$workdir/merge.log" || { echo "FAIL: regcube merge failed" >&2; cat "$workdir/merge.log" >&2; exit 1; }
cmp "$workdir/cluster-merged.json" "$workdir/cluster-single.json" \
  || { echo "FAIL: merged 4-node checkpoint differs from the single engine" >&2; exit 1; }
echo "   OK 4-node merged checkpoint bitwise-equal to single engine ($(wc -c < "$workdir/cluster-merged.json") bytes)"

echo "e2e smoke OK"
