#!/usr/bin/env bash
# End-to-end smoke test for the serving pipeline: pipe `datagen -stream`
# into `streamd -listen`, query every HTTP endpoint mid-stream, then send
# SIGINT and assert the graceful flush — the full binary path the unit
# tests skip. Run from anywhere; needs go and curl.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
workdir=$(mktemp -d)
spid=""
dpid=""
cleanup() {
  [ -n "$spid" ] && kill "$spid" 2>/dev/null || true
  [ -n "$dpid" ] && kill "$dpid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir" ./cmd/datagen ./cmd/streamd

fifo="$workdir/stream.fifo"
mkfifo "$fifo"

echo "== start streamd -listen $ADDR (4 shards)"
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 4 \
  -listen "$ADDR" -checkpoint "$workdir/state.json" \
  < "$fifo" > "$workdir/out.log" 2>&1 &
spid=$!

echo "== start datagen -stream (paced, with query load)"
"$workdir/datagen" -spec D2L2C4T2K -stream -ticks 3000 -pace 5ms \
  -query "http://$ADDR" -qinterval 20ms \
  > "$fifo" 2> "$workdir/datagen.log" &
dpid=$!

fetch() { curl -fsS --max-time 5 "http://$ADDR$1"; }

echo "== wait for the first completed unit"
ready=""
for _ in $(seq 1 150); do
  if h=$(fetch /healthz 2>/dev/null) && grep -q '"unitsDone":[1-9]' <<<"$h"; then
    ready=yes
    break
  fi
  sleep 0.2
done
if [ -z "$ready" ]; then
  echo "FAIL: server never served a completed unit" >&2
  cat "$workdir/out.log" >&2
  exit 1
fi
echo "   healthz: $h"

assert_json() { # path, required substring
  local body
  body=$(fetch "$1")
  if [ -z "$body" ] || ! grep -q "$2" <<<"$body"; then
    echo "FAIL: GET $1 returned unexpected body: $body" >&2
    exit 1
  fi
  echo "   OK GET $1 (${#body} bytes)"
}

echo "== query every endpoint mid-stream"
assert_json '/v1/exceptions?k=5'              '"cells":\['
assert_json '/v1/exceptions?k=3&order=key'    '"cells":\['
assert_json '/v1/summary'                     '"cuboids":\['
assert_json '/v1/alerts'                      '"alerts":\['
assert_json '/v1/supporters?members=0,0'      '"supporters":'
assert_json '/v1/slice?dim=0&level=1&member=0' '"cells":'
assert_json '/v1/trend?members=0,0&k=1'       '"points":\['
# Errors are JSON too.
body=$(curl -sS --max-time 5 "http://$ADDR/v1/slice?dim=99&member=0")
grep -q '"error"' <<<"$body" || { echo "FAIL: bad request not JSON: $body" >&2; exit 1; }
echo "   OK GET /v1/slice (bad dim rejected as JSON error)"
fetch /metrics | grep -q 'regcube_http_requests_total' \
  || { echo "FAIL: /metrics missing counters" >&2; exit 1; }
echo "   OK GET /metrics"

echo "== SIGINT mid-stream: graceful flush + checkpoint + shutdown"
kill -INT "$spid"
rc=0
wait "$spid" || rc=$?
spid=""
if [ "$rc" -ne 0 ]; then
  echo "FAIL: streamd exited $rc after SIGINT" >&2
  cat "$workdir/out.log" >&2
  exit 1
fi
grep -q '# signal: flushing final unit' "$workdir/out.log" \
  || { echo "FAIL: no signal banner in output" >&2; tail "$workdir/out.log" >&2; exit 1; }
grep -qE '^# [0-9]+ records, [0-9]+ units$' "$workdir/out.log" \
  || { echo "FAIL: no final summary in output" >&2; tail "$workdir/out.log" >&2; exit 1; }
[ -s "$workdir/state.json" ] || { echo "FAIL: checkpoint not written" >&2; exit 1; }
kill "$dpid" 2>/dev/null || true
dpid=""

echo "== resume from the checkpoint"
"$workdir/streamd" -spec D2L2C4 -unit 15 -threshold 0.2 -shards 2 \
  -checkpoint "$workdir/state.json" < /dev/null > "$workdir/resume.log" 2>&1
grep -q '# resumed at unit' "$workdir/resume.log" \
  || { echo "FAIL: no resume banner" >&2; cat "$workdir/resume.log" >&2; exit 1; }

echo "e2e smoke OK"
