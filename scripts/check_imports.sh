#!/usr/bin/env bash
# check_imports.sh — enforce the layer DAG between packages.
#
# The runtime is layered: algorithm packages at the bottom, the stream
# engine above them, push-side consumers (alert) and the serving layer
# above that, the node runtime on top, and binaries that are flag parsing
# over one entry package. Imports may only point downward; this script
# fails if any package reaches up or sideways into a layer it must not
# know about.
#
#   cmd/streamd          -> internal/node only (among internal/*)
#   internal/node        -> anything below it except internal/cluster
#   internal/serve       -> must not reach node/cluster/wal/persist/gen
#   internal/alert       -> must not reach node/serve/cluster/wal/persist/gen/query
#   internal/insight     -> must not reach alert/serve/node/wal/cluster/persist/query/gen
#   internal/stream      -> must not reach alert/serve/node/wal/cluster/persist/query/gen
#
# Run from the repo root: ./scripts/check_imports.sh

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# check PKG FORBIDDEN...: fail if PKG imports any forbidden package
# (transitively direct — `go list` of the package's own import list).
check() {
    pkg="$1"
    shift
    imports=$(go list -f '{{join .Imports "\n"}}' "$pkg")
    for bad in "$@"; do
        if echo "$imports" | grep -qx "repro/$bad"; then
            echo "LAYERING VIOLATION: $pkg imports repro/$bad" >&2
            fail=1
        fi
    done
}

# checkonly PKG ALLOWED...: fail if PKG imports any repro/internal
# package not in the allow list.
checkonly() {
    pkg="$1"
    shift
    imports=$(go list -f '{{join .Imports "\n"}}' "$pkg" | grep '^repro/internal/' || true)
    for imp in $imports; do
        ok=0
        for allowed in "$@"; do
            if [ "$imp" = "repro/$allowed" ]; then
                ok=1
                break
            fi
        done
        if [ "$ok" = 0 ]; then
            echo "LAYERING VIOLATION: $pkg imports $imp (allowed: $*)" >&2
            fail=1
        fi
    done
}

# The daemon binary is flag parsing over the node runtime; internal/tilt
# is tolerated for the -tilt flag's parse seam.
checkonly repro/cmd/streamd internal/node internal/tilt

# The node runtime sits above everything except the cluster layer (the
# router is its peer, not its dependency).
check repro/internal/node internal/cluster

# The serving layer reads snapshots and alert state; it must not know
# about the runtime, the cluster, or any persistence machinery.
check repro/internal/serve internal/node internal/cluster internal/wal internal/persist internal/gen

# The alert lifecycle consumes the snapshot bus only.
check repro/internal/alert internal/node internal/serve internal/cluster internal/wal internal/persist internal/gen internal/query

# The prediction subsystem is a pure snapshot consumer between stream
# and its consumers (query and alert both import it); it must know
# nothing above itself.
check repro/internal/insight internal/alert internal/serve internal/node internal/wal internal/cluster internal/persist internal/query internal/gen

# The stream engine is below every consumer; nothing push- or serve-side
# may leak into it.
check repro/internal/stream internal/alert internal/serve internal/node internal/wal internal/cluster internal/persist internal/query internal/gen

# query defines the wire types and executes against engine snapshots; it
# sits between stream and serve and must not reach above itself.
check repro/internal/query internal/serve internal/node internal/cluster internal/wal internal/persist

if [ "$fail" != 0 ]; then
    echo "import layering check FAILED" >&2
    exit 1
fi
echo "import layering check OK"
