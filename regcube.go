// Package regcube is a Go implementation of "Multi-Dimensional Regression
// Analysis of Time-Series Data Streams" (Chen, Dong, Han, Wah, Wang —
// VLDB 2002): regression-measured data cubes over streaming time series.
//
// The library lets you:
//
//   - compress any time series into a 4-number ISB regression measure and
//     aggregate those measures losslessly across standard dimensions and
//     the time dimension (Theorems 3.2/3.3);
//   - register time at multiple granularities with a tilt time frame
//     (71 slots instead of 35,136 for a year of quarter-hours);
//   - compute exception-based regression cubes between an m-layer and an
//     o-layer with either of the paper's two algorithms, m/o H-cubing and
//     popular-path cubing, on an H-tree substrate;
//   - run the whole pipeline online over raw stream records, with o-layer
//     alerts and exception drill-down;
//   - generalize to multiple linear regression (spatio-temporal sensors,
//     irregular ticks, log/polynomial/exponential bases).
//
// This root package is a facade over the internal packages; see
// examples/quickstart for a guided tour and DESIGN.md for the system map.
package regcube

import (
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/exception"
	"repro/internal/gen"
	"repro/internal/mlr"
	"repro/internal/persist"
	"repro/internal/query"
	"repro/internal/regression"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tilt"
	"repro/internal/timeseries"
	"repro/internal/wal"
)

// Time-series substrate (paper §2.2).
type (
	// Series is a discrete time series z(t) over [tb, te].
	Series = timeseries.Series
	// Interval is a closed integer tick range.
	Interval = timeseries.Interval
	// Synth generates deterministic synthetic series.
	Synth = timeseries.Synth
)

// Regression measures (paper §3).
type (
	// ISB is the compact (Interval, Slope, Base) regression measure.
	ISB = regression.ISB
	// IntVal is the equivalent endpoint representation.
	IntVal = regression.IntVal
	// Accumulator fits a growing series in O(1) space.
	Accumulator = regression.Accumulator
	// ResidualStats carries RSS/TSS/R² diagnostics.
	ResidualStats = regression.ResidualStats
	// FoldFunc selects the §6.2 folding aggregate.
	FoldFunc = regression.FoldFunc
)

// Folding aggregates (paper §6.2).
const (
	FoldSum  = regression.FoldSum
	FoldAvg  = regression.FoldAvg
	FoldMin  = regression.FoldMin
	FoldMax  = regression.FoldMax
	FoldLast = regression.FoldLast
)

// Multi-dimensional schema (paper §2.1, §4.2).
type (
	// Schema describes dimensions and the two critical layers.
	Schema = cube.Schema
	// Dimension binds a hierarchy to its m- and o-levels.
	Dimension = cube.Dimension
	// Hierarchy is a concept hierarchy over one dimension.
	Hierarchy = cube.Hierarchy
	// FanoutHierarchy is the synthetic benchmark hierarchy.
	FanoutHierarchy = cube.FanoutHierarchy
	// NamedHierarchy is an explicitly enumerated hierarchy.
	NamedHierarchy = cube.NamedHierarchy
	// Cuboid is one group-by between the critical layers.
	Cuboid = cube.Cuboid
	// CellKey identifies one cell of one cuboid.
	CellKey = cube.CellKey
	// Lattice is the cuboid lattice between the critical layers.
	Lattice = cube.Lattice
	// Path is a popular drilling path through the lattice.
	Path = cube.Path
)

// Exception framework (paper §4.3).
type (
	// Thresholder supplies per-cuboid exception thresholds.
	Thresholder = exception.Thresholder
	// GlobalThreshold applies one threshold cube-wide.
	GlobalThreshold = exception.Global
	// PerCuboidThreshold overrides thresholds per cuboid.
	PerCuboidThreshold = exception.PerCuboid
	// PerDepthThreshold scales thresholds by cuboid depth.
	PerDepthThreshold = exception.PerDepth
	// DeltaDetector flags slope changes between consecutive windows.
	DeltaDetector = exception.Delta
)

// Cube engine (paper §4.4) and online operation (§4.5).
type (
	// Input is one m-layer tuple for the cube engine.
	Input = core.Input
	// Cell is a retained (cell, measure) pair.
	Cell = core.Cell
	// Result is a cubing outcome with stats.
	Result = core.Result
	// Stats carries the paper's time/space cost measures.
	Stats = core.Stats
	// StreamEngine is the online analyzer.
	StreamEngine = stream.Engine
	// StreamConfig configures the online analyzer.
	StreamConfig = stream.Config
	// UnitResult is the outcome of one completed stream unit.
	UnitResult = stream.UnitResult
	// Alert is one o-layer observation with drill-down supporters.
	Alert = stream.Alert
	// Algorithm selects the cubing algorithm.
	Algorithm = stream.Algorithm
)

// Algorithm selectors for StreamConfig.
const (
	AlgorithmMOCubing    = stream.MOCubing
	AlgorithmPopularPath = stream.PopularPath
)

// Tilt time frame (paper §4.1).
type (
	// Frame is a multi-granularity regression register over raw ticks.
	Frame = tilt.Frame
	// UnitFrame is a tilt frame fed with completed-unit ISBs.
	UnitFrame = tilt.UnitFrame
	// UnitFrameState is the serializable state of a UnitFrame.
	UnitFrameState = tilt.UnitFrameState
	// FrameLevel configures one granularity of a frame.
	FrameLevel = tilt.Level
	// FrameSlot is one completed unit at some granularity.
	FrameSlot = tilt.Slot
)

// RestoreUnitFrame rebuilds a unit frame from checkpointed state.
func RestoreUnitFrame(levels []FrameLevel, st UnitFrameState) (*UnitFrame, error) {
	return tilt.RestoreUnitFrame(levels, st)
}

// Result navigation (the analyst's drill-down workflow).
type (
	// ResultView navigates a cubing result: rankings, supporters, slices.
	ResultView = query.View
	// CuboidSummary aggregates one cuboid's retained exceptions.
	CuboidSummary = query.CuboidSummary
)

// Multiple linear regression extension (paper §6.2).
type (
	// MLR is the sufficient-statistic multiple-regression representation.
	MLR = mlr.NCR
	// MLRBasis maps raw regressors to design-matrix features.
	MLRBasis = mlr.Basis
	// MLRModel is a fitted multiple regression.
	MLRModel = mlr.Model
)

// Synthetic workloads (paper §5).
type (
	// DatasetSpec is the D/L/C/T dataset shape.
	DatasetSpec = gen.Spec
	// Dataset is a generated workload.
	Dataset = gen.Dataset
	// DatasetConfig controls generation.
	DatasetConfig = gen.Config
)

// NewSeries builds a series over [tb, tb+len(values)-1].
func NewSeries(tb int64, values []float64) (*Series, error) { return timeseries.New(tb, values) }

// Fit computes the least-squares ISB of a raw series (Lemma 3.1).
func Fit(s *Series) (ISB, error) { return regression.Fit(s) }

// AggregateStandard rolls ISBs up a standard dimension (Theorem 3.2).
func AggregateStandard(isbs ...ISB) (ISB, error) { return regression.AggregateStandard(isbs...) }

// AggregateTime rolls adjacent-interval ISBs up the time dimension
// (Theorem 3.3).
func AggregateTime(isbs ...ISB) (ISB, error) { return regression.AggregateTime(isbs...) }

// Residuals computes RSS/TSS/R² of an ISB against its raw series.
func Residuals(s *Series, isb ISB) (ResidualStats, error) { return regression.Residuals(s, isb) }

// Fold folds k fine ticks per coarse tick with a SQL aggregate (§6.2).
func Fold(s *Series, k int, f FoldFunc) (*Series, error) { return regression.Fold(s, k, f) }

// FoldISB folds a fitted line in closed form, without raw data (§6.2).
func FoldISB(r ISB, k int, f FoldFunc) (ISB, error) { return regression.FoldISB(r, k, f) }

// NewAccumulator returns an O(1)-space online fitter starting at tick tb.
func NewAccumulator(tb int64) *Accumulator { return regression.NewAccumulator(tb) }

// NewSchema validates dimensions and critical layers.
func NewSchema(dims ...Dimension) (*Schema, error) { return cube.NewSchema(dims...) }

// NewFanoutHierarchy builds a uniform-fanout hierarchy.
func NewFanoutHierarchy(name string, fanout, levels int) (*FanoutHierarchy, error) {
	return cube.NewFanoutHierarchy(name, fanout, levels)
}

// NewNamedHierarchy builds an explicitly enumerated hierarchy.
func NewNamedHierarchy(name string) *NamedHierarchy { return cube.NewNamedHierarchy(name) }

// NewLattice materializes the cuboid lattice of a schema.
func NewLattice(s *Schema) *Lattice { return cube.NewLattice(s) }

// MOCubing runs the paper's Algorithm 1 (m/o H-cubing).
func MOCubing(s *Schema, inputs []Input, thr Thresholder) (*Result, error) {
	return core.MOCubing(s, inputs, thr)
}

// PopularPath runs the paper's Algorithm 2 (popular-path cubing).
func PopularPath(s *Schema, inputs []Input, thr Thresholder, path Path) (*Result, error) {
	return core.PopularPath(s, inputs, thr, path)
}

// BUCOptions configures BUC-style regression cubing.
type BUCOptions = core.BUCOptions

// FullCubeResult is the fully materialized regression cube.
type FullCubeResult = core.FullResult

// BUCCubing runs bottom-up regression cubing with optional iceberg
// support pruning (§7 suggested extension).
func BUCCubing(s *Schema, inputs []Input, thr Thresholder, opts BUCOptions) (*Result, error) {
	return core.BUCCubing(s, inputs, thr, opts)
}

// ArrayCubing runs dense multiway-array regression cubing for small,
// dense schemas (§7 suggested extension).
func ArrayCubing(s *Schema, inputs []Input, thr Thresholder) (*Result, error) {
	return core.ArrayCubing(s, inputs, thr)
}

// FullCubing fully materializes every cuboid — the non-exception-driven
// baseline Framework 4.1 is designed to beat.
func FullCubing(s *Schema, inputs []Input) (*FullCubeResult, error) {
	return core.FullCubing(s, inputs)
}

// DeltaCell pairs a cell's current and previous-window regressions.
type DeltaCell = core.DeltaCell

// DeltaResult is the change-based exception cube between two windows.
type DeltaResult = core.DeltaResult

// DeltaCubing computes the "current cell vs. the previous one" exception
// cube between two adjacent time windows (§4.3).
func DeltaCubing(s *Schema, cur, prev []Input, det DeltaDetector) (*DeltaResult, error) {
	return core.DeltaCubing(s, cur, prev, det)
}

// SafeStreamEngine is the mutex-guarded online analyzer.
type SafeStreamEngine = stream.SafeEngine

// NewSafeStreamEngine builds a concurrency-safe online analyzer.
func NewSafeStreamEngine(cfg StreamConfig) (*SafeStreamEngine, error) {
	return stream.NewSafeEngine(cfg)
}

// ShardedStreamEngine is the parallel online analyzer: m-layer cells
// hash-partition by o-layer ancestor across per-shard engines that ingest
// and cube concurrently, merging into results identical to a single
// engine's (alerts deterministically sorted). See DESIGN.md §6.
type ShardedStreamEngine = stream.ShardedEngine

// NewShardedStreamEngine builds a sharded online analyzer with the given
// shard count (≥ 1; runtime.GOMAXPROCS(0) is the natural default). Call
// Close when done.
func NewShardedStreamEngine(cfg StreamConfig, shards int) (*ShardedStreamEngine, error) {
	return stream.NewShardedEngine(cfg, shards)
}

// SortStreamAlerts orders alerts (and their drill-downs) canonically —
// sharded engines already return this order; apply it to a single engine's
// alerts before comparing the two.
func SortStreamAlerts(alerts []Alert) { stream.SortAlerts(alerts) }

// StreamSnapshot is the immutable per-unit view an engine publishes when
// StreamConfig.PublishSnapshots is set: the unit's cube result, alerts in
// canonical order, and every o-cell's trailing history. Reading one (via
// the engine's Snapshot method) is a single atomic load, safe from any
// goroutine concurrently with ingestion.
type StreamSnapshot = stream.Snapshot

// StreamHistoryPoint is one completed unit of an o-cell's history inside a
// snapshot.
type StreamHistoryPoint = stream.HistoryPoint

// StreamFrameView is the immutable multi-granularity view of one o-cell's
// tilted history, published through snapshots when StreamConfig.TiltLevels
// is set (§4.1 over the online engine).
type StreamFrameView = stream.FrameView

// StreamFrameLevelView is one granularity of a StreamFrameView.
type StreamFrameLevelView = stream.FrameLevelView

// StreamCellFrame is the checkpoint record of one o-cell's tilted history.
type StreamCellFrame = stream.CellFrame

// SnapshotSource supplies published snapshots to the query server; both
// stream engine flavors implement it.
type SnapshotSource = serve.Source

// QueryServer is the HTTP/JSON analyst query API over published engine
// snapshots: the GET endpoints (/v1/exceptions, /v1/supporters,
// /v1/slice, /v1/trend with ?level= for tilted granularities, /v1/frame,
// /v1/alerts, /v1/summary, /healthz, /metrics) plus POST /v1/query, the
// typed batch endpoint of the query API v2. It is an http.Handler; see
// DESIGN.md §7 for the snapshot-publication protocol behind it, §8 for
// the tilted history, and §9 for the typed request model. The Go client
// SDK for the API lives in the repro/client package.
type QueryServer = serve.Server

// NewQueryServer builds the analyst query API over a snapshot source.
func NewQueryServer(src SnapshotSource, schema *Schema) *QueryServer {
	return serve.New(src, schema)
}

// Typed query API v2 (DESIGN.md §9): transport-independent request and
// response models. Build requests, execute them in-process against a
// snapshot with a QueryExecutor, or send them over HTTP with
// repro/client.
type (
	// QueryRequest is the typed request union: summary / exceptions /
	// alerts / supporters / slice / trend / frame.
	QueryRequest = query.Request
	// QueryKind discriminates requests on the wire.
	QueryKind = query.Kind
	// QueryCellRef names one cell by levels and members (nil levels =
	// o-layer).
	QueryCellRef = query.CellRef
	// QuerySummaryRequest asks for the unit header and cuboid rollup.
	QuerySummaryRequest = query.SummaryRequest
	// QueryExceptionsRequest asks for ranked exception cells.
	QueryExceptionsRequest = query.ExceptionsRequest
	// QueryAlertsRequest asks for the unit's o-layer alerts.
	QueryAlertsRequest = query.AlertsRequest
	// QuerySupportersRequest asks for a cell's exception descendants.
	QuerySupportersRequest = query.SupportersRequest
	// QuerySliceRequest asks for the exceptions under one member.
	QuerySliceRequest = query.SliceRequest
	// QueryTrendRequest asks for a k-unit trend regression of an o-cell.
	QueryTrendRequest = query.TrendRequest
	// QueryFrameRequest asks for an o-cell's tilt frame listing.
	QueryFrameRequest = query.FrameRequest
	// QueryResponse is the typed response union.
	QueryResponse = query.Response
	// QuerySummaryResponse answers QuerySummaryRequest.
	QuerySummaryResponse = query.SummaryResponse
	// QueryCellsResponse answers exceptions and slice requests.
	QueryCellsResponse = query.CellsResponse
	// QueryAlertsResponse answers QueryAlertsRequest.
	QueryAlertsResponse = query.AlertsResponse
	// QuerySupportersResponse answers QuerySupportersRequest.
	QuerySupportersResponse = query.SupportersResponse
	// QueryTrendResponse answers QueryTrendRequest.
	QueryTrendResponse = query.TrendResponse
	// QueryFrameResponse answers QueryFrameRequest.
	QueryFrameResponse = query.FrameResponse
	// QueryBatchRequest is the POST /v1/query body: many requests, one
	// unit-consistent reply.
	QueryBatchRequest = query.BatchRequest
	// QueryBatchResponse is the batch reply with per-request results.
	QueryBatchResponse = query.BatchResponse
	// QueryExecutor validates and runs typed requests against one
	// published snapshot.
	QueryExecutor = query.Executor
)

// Query API sentinel errors; test with errors.Is (the client SDK maps
// HTTP statuses back onto them).
var (
	// ErrQueryInvalid marks requests that can never succeed (HTTP 400).
	ErrQueryInvalid = query.ErrInvalid
	// ErrQueryNotFound marks targets absent from the unit (HTTP 404).
	ErrQueryNotFound = query.ErrNotFound
	// ErrQueryUnavailable means no unit has completed yet (HTTP 503).
	ErrQueryUnavailable = query.ErrUnavailable
)

// NewQueryExecutor builds the typed-request dispatcher over one published
// snapshot — the in-process path the HTTP server and the client SDK both
// run through.
func NewQueryExecutor(schema *Schema, snap *StreamSnapshot) (*QueryExecutor, error) {
	return query.NewExecutor(schema, snap)
}

// QueryOCell references an o-layer cell by its members.
func QueryOCell(members ...int32) QueryCellRef { return query.OCell(members...) }

// QueryCell references a cell at explicit levels.
func QueryCell(levels []int, members []int32) QueryCellRef {
	return query.Cell(levels, members)
}

// FitMLRRaw fits a multiple regression by Householder QR on the raw
// design matrix — the robust path for ill-conditioned bases.
func FitMLRRaw(b MLRBasis, vars [][]float64, ys []float64) (*MLRModel, error) {
	return mlr.FitRaw(b, vars, ys)
}

// NewStreamEngine builds the online analyzer of §4.5.
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) { return stream.NewEngine(cfg) }

// NewFrame builds a tilt time frame from a level chain.
func NewFrame(levels []FrameLevel, startTick int64) (*Frame, error) {
	return tilt.New(levels, startTick)
}

// NewUnitFrame builds a tilt frame fed with completed-unit ISBs.
func NewUnitFrame(levels []FrameLevel) (*UnitFrame, error) { return tilt.NewUnitFrame(levels) }

// NewResultView builds the drill-down navigation view over a result.
func NewResultView(res *Result) *ResultView { return query.NewView(res) }

// MLRInference carries coefficient standard errors and t-values.
type MLRInference = mlr.Inference

// CalendarFrameLevels returns the paper's quarter/hour/day/month frame.
func CalendarFrameLevels() []FrameLevel { return tilt.CalendarLevels() }

// LogarithmicFrameLevels returns a doubling-coverage frame (extension).
func LogarithmicFrameLevels(levels, ticksPerUnit, slots int) []FrameLevel {
	return tilt.LogarithmicLevels(levels, ticksPerUnit, slots)
}

// NewMLR returns an empty multiple-regression representation (§6.2).
func NewMLR(b MLRBasis) *MLR { return mlr.New(b) }

// TimeBasis is the (1,t) basis matching the paper's (α̂, β̂).
func TimeBasis() MLRBasis { return mlr.TimeBasis() }

// LinearBasis is an intercept plus d raw regressors.
func LinearBasis(d int) MLRBasis { return mlr.LinearBasis(d) }

// PolynomialBasis is (1, t, …, t^degree).
func PolynomialBasis(degree int) MLRBasis { return mlr.PolynomialBasis(degree) }

// LogBasis is (1, log v).
func LogBasis() MLRBasis { return mlr.LogBasis() }

// ExpBasis is (1, e^(rate·v)).
func ExpBasis(rate float64) MLRBasis { return mlr.ExpBasis(rate) }

// MergeMLRTime merges multiple-regression statistics over concatenated
// observation sets (time-dimension roll-up).
func MergeMLRTime(parts ...*MLR) (*MLR, error) { return mlr.MergeTime(parts...) }

// MergeMLRStandard merges multiple-regression statistics over summed
// responses at shared design points (standard-dimension roll-up).
func MergeMLRStandard(tol float64, parts ...*MLR) (*MLR, error) {
	return mlr.MergeStandard(tol, parts...)
}

// ParseDatasetSpec parses the paper's D#L#C#T# workload convention.
func ParseDatasetSpec(s string) (DatasetSpec, error) { return gen.ParseSpec(s) }

// GenerateDataset builds a synthetic workload.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) { return gen.Generate(cfg) }

// IsException reports whether an ISB's slope magnitude passes a threshold.
func IsException(isb ISB, threshold float64) bool { return exception.IsException(isb, threshold) }

// StreamCheckpoint is the serializable state of a stream engine.
type StreamCheckpoint = stream.Checkpoint

// ShardedStreamCheckpoint is the serializable state of a sharded stream
// engine: one checkpoint per shard, restorable at any shard count.
type ShardedStreamCheckpoint = stream.ShardedCheckpoint

// WriteResult serializes a cubing result's retained layers as JSON.
func WriteResult(w io.Writer, res *Result) error { return persist.WriteResult(w, res) }

// ReadResult deserializes a cubing result against its schema.
func ReadResult(r io.Reader, schema *Schema) (*Result, error) { return persist.ReadResult(r, schema) }

// WriteCheckpoint serializes a stream-engine checkpoint as JSON.
func WriteCheckpoint(w io.Writer, cp *StreamCheckpoint) error {
	return persist.WriteCheckpoint(w, cp)
}

// ReadCheckpoint deserializes a stream-engine checkpoint; per-shard
// (version 2) files are merged into an equivalent single-engine state.
func ReadCheckpoint(r io.Reader) (*StreamCheckpoint, error) { return persist.ReadCheckpoint(r) }

// WriteShardedCheckpoint serializes a sharded-engine checkpoint as JSON
// (envelope version 2).
func WriteShardedCheckpoint(w io.Writer, scp *ShardedStreamCheckpoint) error {
	return persist.WriteShardedCheckpoint(w, scp)
}

// ReadShardedCheckpoint deserializes a checkpoint for a sharded engine;
// single-engine (version 1) files load as a one-shard set.
func ReadShardedCheckpoint(r io.Reader) (*ShardedStreamCheckpoint, error) {
	return persist.ReadShardedCheckpoint(r)
}

// Durable ingest (DESIGN.md §10): a segmented, CRC32C-framed write-ahead
// record log. streamd appends every record before ingest; recovery replays
// the durable suffix past a checkpoint's watermark, and `regcube replay`
// re-runs a whole log under a different configuration.
type (
	// WALRecord is one logged stream record: (members, tick, value).
	WALRecord = wal.Record
	// WALOptions configures OpenWAL: directory, segment size, sync policy.
	WALOptions = wal.Options
	// WALLog is an open, appendable write-ahead log.
	WALLog = wal.Log
	// WALSyncPolicy selects when appends are fsynced.
	WALSyncPolicy = wal.SyncPolicy
	// WALSegmentInfo describes one log segment.
	WALSegmentInfo = wal.SegmentInfo
)

// WAL sync policies.
const (
	WALSyncBatch    = wal.SyncBatch
	WALSyncInterval = wal.SyncInterval
	WALSyncOff      = wal.SyncOff
)

// WAL failure classes; test with errors.Is.
var (
	// ErrWALTorn marks an incomplete tail write (truncated on recovery).
	ErrWALTorn = wal.ErrTorn
	// ErrWALCorrupt marks damaged durable data or an inconsistent log
	// directory.
	ErrWALCorrupt = wal.ErrCorrupt
)

// OpenWAL opens (or initializes) a write-ahead log for appending,
// truncating any torn or corrupt tail left by a crash.
func OpenWAL(opts WALOptions) (*WALLog, error) { return wal.Open(opts) }

// ReplayWAL reads a log read-only, invoking fn for every record at
// sequence ≥ from, and returns the durable record count. Pair it with a
// checkpoint's WALSeq to rebuild an engine's open unit, or replay from 0
// into a differently configured engine for what-if analysis.
func ReplayWAL(dir string, from int64, fn func(seq int64, rec WALRecord) error) (int64, error) {
	return wal.Replay(dir, from, fn)
}

// ParseWALSyncPolicy decodes the -wal-sync flag syntax: "batch", "off",
// "interval", or "interval=250ms".
func ParseWALSyncPolicy(s string) (WALSyncPolicy, time.Duration, error) {
	return wal.ParseSyncPolicy(s)
}

// ParseFrameLevels decodes the -tilt flag syntax shared by streamd and
// regcube replay: "calendar", "log<N>x<S>", or "name:multiple:slots,...".
func ParseFrameLevels(s string) ([]FrameLevel, error) { return tilt.ParseLevels(s) }

// WriteDatasetCSV emits a dataset in the cmd/datagen CSV format.
func WriteDatasetCSV(w io.Writer, ds *Dataset) error { return gen.WriteCSV(w, ds) }

// ReadDatasetCSV parses a dataset CSV against the given schema.
func ReadDatasetCSV(r io.Reader, schema *Schema) ([]Input, error) { return gen.ReadCSV(r, schema) }
